package cluster

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/baseline"
	"pdtl/internal/gen"
	"pdtl/internal/graph"
	"pdtl/internal/mgt"
)

func writeStore(t testing.TB, g *graph.CSR, name string) string {
	t.Helper()
	base := filepath.Join(t.TempDir(), name)
	if err := graph.WriteCSR(base, name, g); err != nil {
		t.Fatal(err)
	}
	return base
}

func startCluster(t testing.TB, n int) *LocalCluster {
	t.Helper()
	lc, err := StartLocal(n, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	return lc
}

func TestDistributedCountMatchesReference(t *testing.T) {
	g, err := gen.RMAT(10, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(g)
	base := writeStore(t, g, "rmat10")

	for _, clients := range []int{0, 1, 3} {
		lc := startCluster(t, clients)
		res, err := Run(context.Background(), Config{
			GraphBase: base,
			Workers:   2,
			MemEdges:  512,
			Strategy:  balance.InDegree,
		}, lc.Addrs())
		if err != nil {
			t.Fatalf("clients=%d: %v", clients, err)
		}
		if res.Triangles != want {
			t.Errorf("clients=%d: triangles = %d, want %d", clients, res.Triangles, want)
		}
		if len(res.Nodes) != clients+1 {
			t.Errorf("clients=%d: node results = %d", clients, len(res.Nodes))
		}
		// Master never has copy time; clients always do.
		if res.Nodes[0].CopyBytes != 0 {
			t.Error("master should not copy to itself")
		}
		for i := 1; i < len(res.Nodes); i++ {
			if res.Nodes[i].CopyBytes == 0 {
				t.Errorf("node %d: no copy bytes recorded", i)
			}
		}
	}
}

func TestDistributedNetworkTraffic(t *testing.T) {
	// Theorem IV.3: network traffic is Θ(N·(P+|E|)+T); with counting only,
	// the dominant term is one oriented-graph replica per client.
	g, err := gen.ErdosRenyi(500, 5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "er")
	lc := startCluster(t, 3)
	res, err := Run(context.Background(), Config{GraphBase: base, Workers: 2, MemEdges: 1024}, lc.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	d, err := graph.Open(res.OrientedBase)
	if err != nil {
		t.Fatal(err)
	}
	replica := d.AdjBytes() + int64(d.NumVertices())*graph.EntrySize
	// 3 replicas, plus the small meta files.
	if res.NetworkBytes < 3*replica {
		t.Errorf("network bytes %d below 3 replicas (%d)", res.NetworkBytes, 3*replica)
	}
	if res.NetworkBytes > 3*replica+10_000 {
		t.Errorf("network bytes %d too far above 3 replicas (%d)", res.NetworkBytes, 3*replica)
	}
}

func TestDistributedListing(t *testing.T) {
	g, err := gen.TriGrid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "tg")
	lc := startCluster(t, 2)
	listPath := filepath.Join(t.TempDir(), "triangles.bin")
	res, err := Run(context.Background(), Config{
		GraphBase: base,
		Workers:   2,
		MemEdges:  64,
		List:      true,
		ListPath:  listPath,
	}, lc.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	want := gen.TriGridTriangles(8, 8)
	if res.Triangles != want {
		t.Errorf("count = %d, want %d", res.Triangles, want)
	}
	f, err := os.Open(listPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	triples, err := mgt.ReadTriangles(f)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(triples)) != want {
		t.Fatalf("listed %d triangles, want %d", len(triples), want)
	}
	// No duplicates across nodes.
	sort.Slice(triples, func(i, j int) bool {
		a, b := triples[i], triples[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	for i := 1; i < len(triples); i++ {
		if triples[i] == triples[i-1] {
			t.Fatalf("duplicate triangle %v across nodes", triples[i])
		}
	}
}

func TestDistributedOrientedInput(t *testing.T) {
	g, err := gen.Complete(16)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "k16")
	// Pre-orient via a first run, then feed the oriented store.
	lc := startCluster(t, 1)
	res1, err := Run(context.Background(), Config{GraphBase: base, Workers: 1, MemEdges: 64}, lc.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(context.Background(), Config{GraphBase: res1.OrientedBase, Workers: 1, MemEdges: 64}, lc.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Orientation != nil {
		t.Error("oriented input should skip orientation")
	}
	if res2.Triangles != gen.CompleteTriangles(16) {
		t.Errorf("triangles = %d", res2.Triangles)
	}
}

func TestUplinkLimiterSlowsCopies(t *testing.T) {
	g, err := gen.ErdosRenyi(2000, 40000, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "big")
	lc := startCluster(t, 1)

	fast, err := Run(context.Background(), Config{GraphBase: base, Workers: 1, MemEdges: 1 << 16}, lc.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	// With rate 4·replica/s and a 100ms burst (0.4·replica), the copy
	// must spend at least (replica − 0.4·replica)/(4·replica/s) = 150ms
	// waiting, regardless of host speed.
	replica := fast.Nodes[1].CopyBytes
	slow, err := Run(context.Background(), Config{
		GraphBase:         base,
		Workers:           1,
		MemEdges:          1 << 16,
		UplinkBytesPerSec: 4 * replica,
		ChunkBytes:        int(replica / 16),
	}, lc.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	if slow.Nodes[1].CopyTime < 100*time.Millisecond {
		t.Errorf("limited copy (%v) below the deterministic 150ms floor", slow.Nodes[1].CopyTime)
	}
}

func TestNodeTransferErrors(t *testing.T) {
	node := NewNode("n", t.TempDir(), 2)
	var hello HelloReply
	if err := node.Hello(&HelloArgs{}, &hello); err != nil || hello.Name != "n" || hello.MaxWorkers != 2 {
		t.Fatalf("hello = %+v err=%v", hello, err)
	}
	var ping PingReply
	if err := node.Ping(&PingArgs{}, &ping); err != nil || !ping.OK {
		t.Fatal("ping failed")
	}
	// Chunk without Begin.
	if err := node.GraphChunk(&ChunkArgs{Kind: FileAdj, Data: []byte{1}}, &struct{}{}); err == nil {
		t.Error("want error for chunk without begin")
	}
	// End without Begin.
	var end EndGraphReply
	if err := node.EndGraph(&EndGraphArgs{}, &end); err == nil {
		t.Error("want error for end without begin")
	}
	// Begin twice.
	if err := node.BeginGraph(&BeginGraphArgs{Name: "g"}, &struct{}{}); err != nil {
		t.Fatal(err)
	}
	if err := node.BeginGraph(&BeginGraphArgs{Name: "g"}, &struct{}{}); err == nil {
		t.Error("want error for concurrent transfer")
	}
	// Unknown file kind.
	if err := node.GraphChunk(&ChunkArgs{Kind: "bogus", Data: []byte{1}}, &struct{}{}); err == nil {
		t.Error("want error for unknown kind")
	}
	if err := node.EndGraph(&EndGraphArgs{}, &end); err != nil {
		t.Fatal(err)
	}
	// Count against a missing replica.
	var reply CountReply
	err := node.Count(&CountArgs{GraphName: "missing", Ranges: []balance.Range{{Lo: 0, Hi: 1}}, MemEdges: 4}, &reply)
	if err == nil {
		t.Error("want error for missing replica")
	}
}

func TestRunFailsOnDeadNode(t *testing.T) {
	g, err := gen.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "k6")
	lc := startCluster(t, 1)
	addr := lc.Addrs()[0]
	lc.Close()
	if _, err := Run(context.Background(), Config{GraphBase: base, Workers: 1, MemEdges: 16}, []string{addr}); err == nil {
		t.Fatal("want error when node is unreachable")
	}
}

func TestListRequiresPath(t *testing.T) {
	g, err := gen.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	base := writeStore(t, g, "k5")
	if _, err := Run(context.Background(), Config{GraphBase: base, Workers: 1, MemEdges: 16, List: true}, nil); err == nil {
		t.Fatal("want error for List without ListPath")
	}
}

func TestLimiter(t *testing.T) {
	// Unlimited limiter never blocks.
	l := NewLimiter(0)
	done := make(chan struct{})
	go func() {
		l.Wait(1 << 30)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("unlimited limiter blocked")
	}
	// A nil limiter is a no-op too.
	var nilL *Limiter
	nilL.Wait(100)

	// A limited limiter enforces an approximate rate beyond its 100ms
	// burst: at 10 MiB/s the burst is 1 MiB, so waiting for 3 MiB must
	// take at least (3−1)/10 = 200ms.
	rate := int64(10 << 20)
	l = NewLimiter(rate)
	start := time.Now()
	l.Wait(3 << 20)
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("limited Wait returned too fast: %v", elapsed)
	}
}

// Package cluster implements PDTL's distributed framework (Section IV-B,
// Figure 1): a master orients the graph once, replicates the oriented store
// to every client node, assigns each node its processors' contiguous edge
// ranges (the configurations C_{i,j} of Figure 1), and atomically sums the
// returned triangle counts.
//
// Transport is net/rpc over TCP (stdlib gob encoding). Graph bytes travel
// in chunked RPCs through an optional token-bucket uplink limiter that
// models the shared NIC of the paper's EC2 experiments, so that average
// copy time grows with node count as in Table III.
package cluster

// The gob wire surface below is fingerprinted into wire.fingerprint
// (append-only policy; see internal/analysis/wirefp). After appending a
// field or struct, regenerate the golden:
//
//go:generate go run pdtl/cmd/pdtl-wirefp -o wire.fingerprint

import (
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/core"
	"pdtl/internal/ioacct"
	"pdtl/internal/obs"
)

// FileKind identifies which store file a chunk belongs to.
type FileKind string

// The store files replicated to every node. Which set travels depends on
// the oriented store's encoding: plain stores ship {meta, deg, adj},
// compressed stores ship {meta, deg, cadj, cidx}. The in-degree file is
// never copied: load balancing is the master's job (Section IV-B1).
const (
	FileMeta FileKind = "meta"
	FileDeg  FileKind = "deg"
	FileAdj  FileKind = "adj"
	FileCAdj FileKind = "cadj"
	FileCIdx FileKind = "cidx"
)

// HelloArgs requests a handshake.
type HelloArgs struct{}

// HelloReply describes a node.
type HelloReply struct {
	// Name is the node's self-reported label.
	Name string
	// MaxWorkers is the node's available processor count.
	MaxWorkers int
}

// BeginGraphArgs starts a graph transfer.
type BeginGraphArgs struct {
	// Name is the dataset name; the node stores the copy under it.
	Name string
	// Token identifies this transfer: the chunks and EndGraph that follow
	// must carry it. A later BeginGraph supersedes the transfer and
	// invalidates the token, so a superseded master (presumed dead, but
	// possibly just slow) has its stale in-flight chunks rejected instead
	// of interleaved into the new master's files.
	Token string
	// Kinds lists the file kinds this transfer will stream; empty means the
	// plain-store triple {meta, deg, adj} (masters predating the compressed
	// format).
	Kinds []FileKind
}

// ChunkArgs carries one chunk of one store file.
type ChunkArgs struct {
	// Token must match the BeginGraph that opened the transfer.
	Token string
	Kind  FileKind
	Data  []byte
}

// EndGraphArgs finalizes a transfer.
type EndGraphArgs struct {
	// Token must match the BeginGraph that opened the transfer.
	Token string
}

// EndGraphReply acknowledges and reports the bytes received.
type EndGraphReply struct {
	BytesReceived int64
}

// CountArgs instructs a node to run its calculation phase.
type CountArgs struct {
	// GraphName selects which received graph copy to process.
	GraphName string
	// RunID identifies this calculation for cooperative cancellation: the
	// master may abort it mid-run with a Cancel RPC carrying the same id.
	// Empty means the run is not cancellable remotely. The id is derived
	// from the run and the work unit's global plan index — NOT from the
	// attempt — so a unit reassigned after a node failure carries the same
	// id on its new node; Count is read-only against the replica, which
	// makes such re-execution idempotent.
	RunID string
	// Ranges are the node's processors' pivot responsibilities. Under the
	// static scheduler one MGT runner is started per range; under stealing
	// they are one batch of the master's global chunk list, drained by a
	// pool of Workers runners.
	Ranges []balance.Range
	// Sched names the node's chunk scheduler ("static", "stealing"); empty
	// means static — the paper's one-shot binding. Strings travel on the
	// wire for the same compatibility reason as Scan/Kernel.
	Sched string
	// Workers is the runner-pool size for the stealing scheduler;
	// non-positive falls back to one runner per range (the static rule).
	// Ignored under static, where len(Ranges) is the pool.
	Workers int
	// MemEdges is M per runner.
	MemEdges int
	// BufBytes is the runner scan buffer size.
	BufBytes int
	// Scan names the node's scan source ("auto", "buffered", "shared",
	// "mem"); empty means auto. Strings rather than enum ints travel on
	// the wire so heterogeneous builds stay compatible.
	Scan string
	// Kernel names the intersection kernel ("merge", "gallop", "adaptive",
	// "compressed", "cover"); empty means merge. Counting requests (List
	// false) run the kernel's count-only path on the node; the per-worker
	// stats in the reply then carry WordOps/FastDecodes.
	Kernel string
	// List requests triangle listing; the triples come back in the reply
	// (the paper's clients send lists back to the master, which
	// concatenates them sequentially).
	List bool
	// TraceSpan is the span context of a traced run: the master's dispatch
	// span id plus one (so the gob zero value keeps meaning "tracing
	// off" for masters predating tracing). A non-zero value asks the node
	// to record its calculation as spans and return them in
	// CountReply.Spans; the master re-parents them under its dispatch
	// span.
	TraceSpan int64
}

// CountReply carries a node's results back to the master.
type CountReply struct {
	Triangles uint64
	// Workers is the per-runner statistics (feeds Tables IV/VII and
	// Figures 6–8).
	Workers []core.WorkerStat
	// SourceIO is the I/O the node's scan source performed on its own
	// behalf (shared broadcast scans, in-memory preload).
	SourceIO ioacct.Stats
	// CalcTime is the node's wall time for the calculation phase.
	CalcTime time.Duration
	// Triples is the binary triangle list (12 bytes per triangle) when
	// List was requested.
	Triples []byte
	// Spans is the node's recorded trace (position-independent wire form)
	// when CountArgs.TraceSpan requested tracing; nil otherwise. Roots
	// carry Parent -1 and are re-parented by the master's Merge.
	Spans []obs.WireSpan
}

// PingArgs checks liveness.
type PingArgs struct{}

// PingReply acknowledges a ping.
type PingReply struct {
	OK bool
}

// CancelArgs aborts an in-flight Count by its RunID. The cancelled Count
// RPC itself returns promptly (within one memory window per runner) with a
// cancellation error; Cancel only triggers it.
type CancelArgs struct {
	RunID string
}

// CancelReply reports whether the run was found still in flight.
type CancelReply struct {
	Found bool
}

package cluster

import (
	"sync"
	"time"
)

// Limiter is a token-bucket byte-rate limiter shared by all of the master's
// outgoing graph copies. It stands in for the fixed-capacity NIC of the
// paper's testbeds: with several clients copying concurrently, each sees a
// proportionally lower rate, which is what makes Table III's average copy
// time grow with node count.
type Limiter struct {
	mu         sync.Mutex
	bytesPerNS float64
	avail      float64
	last       time.Time
	burst      float64
}

// NewLimiter creates a limiter allowing bytesPerSec throughput with a burst
// of 100 ms worth of volume (the order of a NIC's buffering). A
// non-positive rate disables limiting (Wait becomes a no-op).
func NewLimiter(bytesPerSec int64) *Limiter {
	if bytesPerSec <= 0 {
		return &Limiter{}
	}
	rate := float64(bytesPerSec) / float64(time.Second)
	burst := float64(bytesPerSec) / 10
	if burst < 1 {
		burst = 1
	}
	return &Limiter{
		bytesPerNS: rate,
		burst:      burst,
		avail:      burst,
		last:       time.Now(),
	}
}

// Wait charges n bytes against the bucket and sleeps off any deficit
// (debt-based token bucket, so requests larger than the burst are simply
// paid for over time). Concurrent senders share the rate.
func (l *Limiter) Wait(n int) {
	if l == nil || l.bytesPerNS == 0 {
		return
	}
	l.mu.Lock()
	now := time.Now()
	l.avail += float64(now.Sub(l.last)) * l.bytesPerNS
	l.last = now
	if l.avail > l.burst {
		l.avail = l.burst
	}
	l.avail -= float64(n)
	var sleep time.Duration
	if l.avail < 0 {
		sleep = time.Duration(-l.avail / l.bytesPerNS)
	}
	l.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
}

package cluster

import (
	"context"
	"sync"
	"time"
)

// Limiter is a token-bucket byte-rate limiter shared by all of the master's
// outgoing graph copies. It stands in for the fixed-capacity NIC of the
// paper's testbeds: with several clients copying concurrently, each sees a
// proportionally lower rate, which is what makes Table III's average copy
// time grow with node count.
type Limiter struct {
	mu         sync.Mutex
	bytesPerNS float64
	avail      float64
	last       time.Time
	burst      float64
}

// NewLimiter creates a limiter allowing bytesPerSec throughput with a burst
// of 100 ms worth of volume (the order of a NIC's buffering). A
// non-positive rate disables limiting (Wait becomes a no-op).
func NewLimiter(bytesPerSec int64) *Limiter {
	if bytesPerSec <= 0 {
		return &Limiter{}
	}
	rate := float64(bytesPerSec) / float64(time.Second)
	burst := float64(bytesPerSec) / 10
	if burst < 1 {
		burst = 1
	}
	return &Limiter{
		bytesPerNS: rate,
		burst:      burst,
		avail:      burst,
		last:       time.Now(),
	}
}

// Wait charges n bytes against the bucket and sleeps off any deficit
// (debt-based token bucket, so requests larger than the burst are simply
// paid for over time). Concurrent senders share the rate.
//
// The sleep honors ctx: a cancelled copy returns ctx.Err() immediately
// instead of blocking for its whole token debt (seconds, at realistic
// rates), and the unsent bytes are refunded so an aborted copy does not
// steal bandwidth from surviving senders. No goroutines are spawned.
func (l *Limiter) Wait(ctx context.Context, n int) error {
	if l == nil || l.bytesPerNS == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	l.mu.Lock()
	now := time.Now()
	l.avail += float64(now.Sub(l.last)) * l.bytesPerNS
	l.last = now
	if l.avail > l.burst {
		l.avail = l.burst
	}
	l.avail -= float64(n)
	var sleep time.Duration
	if l.avail < 0 {
		sleep = time.Duration(-l.avail / l.bytesPerNS)
	}
	l.mu.Unlock()
	if sleep <= 0 {
		if err := ctx.Err(); err != nil {
			l.refund(n)
			return err
		}
		return nil
	}
	t := time.NewTimer(sleep)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		l.refund(n)
		return ctx.Err()
	}
}

// refund returns an aborted send's charge to the bucket: the bytes never
// crossed the uplink, so surviving senders must not sleep off their debt.
// Clipped at the burst, like every other credit.
func (l *Limiter) refund(n int) {
	l.mu.Lock()
	l.avail += float64(n)
	if l.avail > l.burst {
		l.avail = l.burst
	}
	l.mu.Unlock()
}

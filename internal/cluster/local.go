package cluster

import (
	"fmt"
	"os"
	"path/filepath"
)

// LocalCluster is a set of in-process node servers on loopback TCP, used by
// tests, benchmarks, and the distributed example. Each node has its own
// working directory — its own disk replica of the graph — so the full
// protocol (copy, assign, count, aggregate) is exercised end to end; only
// the physical machine boundary is simulated (DESIGN.md §3).
type LocalCluster struct {
	Servers []*Server
	dirs    []string
	ownDirs bool
}

// StartLocal starts n client nodes listening on 127.0.0.1, each with a
// fresh working directory under dir (created if needed). The returned
// cluster must be Closed.
func StartLocal(n int, dir string) (*LocalCluster, error) {
	lc := &LocalCluster{}
	for i := 0; i < n; i++ {
		workDir := filepath.Join(dir, fmt.Sprintf("node%d", i+1))
		if err := os.MkdirAll(workDir, 0o755); err != nil {
			lc.Close()
			return nil, err
		}
		node := NewNode(fmt.Sprintf("node%d", i+1), workDir, 0)
		srv, err := Listen(node, "127.0.0.1:0")
		if err != nil {
			lc.Close()
			return nil, err
		}
		lc.Servers = append(lc.Servers, srv)
		lc.dirs = append(lc.dirs, workDir)
	}
	return lc, nil
}

// Addrs lists the nodes' RPC addresses, in order.
func (lc *LocalCluster) Addrs() []string {
	addrs := make([]string, len(lc.Servers))
	for i, s := range lc.Servers {
		addrs[i] = s.Addr()
	}
	return addrs
}

// Close stops all node servers.
func (lc *LocalCluster) Close() error {
	var firstErr error
	for _, s := range lc.Servers {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

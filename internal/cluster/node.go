package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/rpc"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pdtl/internal/core"
	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
	"pdtl/internal/mgt"
	"pdtl/internal/obs"
	"pdtl/internal/scan"
	"pdtl/internal/sched"
)

// Node is the client-side RPC service of the PDTL protocol: it receives a
// replica of the oriented graph, runs one MGT runner per assigned edge
// range on its local copy, and returns counts (and, for listing, the
// triangle triples) to the master.
type Node struct {
	name    string
	workDir string
	workers int

	mu       sync.Mutex
	incoming map[FileKind]*os.File
	curName  string
	curToken string
	received int64
	// disks caches opened replica stores per graph name. The stealing
	// master sends many small Count batches per run; without the cache
	// every batch would re-read the replica's metadata and whole degree
	// file. A Disk holds no open file descriptors, so cache entries need
	// no teardown; a re-received graph (EndGraph) drops its stale entry
	// and bumps diskGen so an open that was racing the re-replication
	// cannot re-poison the cache with the old copy's handle.
	disks   map[string]*graph.Disk
	diskGen map[string]int
	// runs maps the RunID of every in-flight Count to its cancel func, so
	// a master's Cancel RPC (or a server shutdown) can abort it mid-run.
	runs map[string]context.CancelFunc
	// cancelledRuns tombstones RunIDs whose Cancel arrived before the
	// Count registered (net/rpc serves each request in its own goroutine,
	// so a short-deadline master can race the two): a late-registering
	// Count sees its tombstone and aborts instead of computing the whole
	// run uncancellably.
	cancelledRuns map[string]struct{}
}

// maxCancelTombstones bounds cancelledRuns (entries whose Count already
// finished are never claimed); past the bound the set is simply cleared —
// losing a tombstone only costs one wasted (not incorrect) run.
const maxCancelTombstones = 1024

// NewNode creates a node that stores graph replicas under workDir. workers
// is advertised to the master as the node's processor count; non-positive
// means "decided by the master's CountArgs".
func NewNode(name, workDir string, workers int) *Node {
	return &Node{name: name, workDir: workDir, workers: workers}
}

// base returns the node-local store base path for a dataset name.
func (n *Node) base(name string) string {
	return filepath.Join(n.workDir, filepath.Base(name))
}

// Hello implements the handshake RPC.
func (n *Node) Hello(args *HelloArgs, reply *HelloReply) error {
	reply.Name = n.name
	reply.MaxWorkers = n.workers
	return nil
}

// Ping implements the liveness RPC.
func (n *Node) Ping(args *PingArgs, reply *PingReply) error {
	reply.OK = true
	return nil
}

// BeginGraph opens the three replica files for writing. A transfer that is
// still "in progress" when a new one begins is a transfer whose master died
// or was partitioned mid-copy: the new transfer supersedes it — the stale
// files are closed and removed, and the old transfer's token is
// invalidated, so if its master turns out to be merely slow rather than
// dead, its stale in-flight chunks are rejected (not interleaved into the
// new files) and it fails cleanly.
func (n *Node) BeginGraph(args *BeginGraphArgs, reply *struct{}) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.incoming != nil {
		n.abortLocked()
	}
	base := n.base(args.Name)
	if err := os.MkdirAll(filepath.Dir(base), 0o755); err != nil {
		return err
	}
	kinds := args.Kinds
	if len(kinds) == 0 {
		kinds = []FileKind{FileMeta, FileDeg, FileAdj}
	}
	n.incoming = make(map[FileKind]*os.File, len(kinds))
	for _, kind := range kinds {
		path, err := replicaPath(base, kind)
		if err != nil {
			n.abortLocked()
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			n.abortLocked()
			return err
		}
		n.incoming[kind] = f
	}
	// Drop the other encoding's files from a previous replica of this
	// name: the metadata decides which encoding is read, but a store
	// switching formats must not leave the stale encoding behind.
	for _, kind := range []FileKind{FileAdj, FileCAdj, FileCIdx} {
		if _, ok := n.incoming[kind]; !ok {
			if path, err := replicaPath(base, kind); err == nil {
				os.Remove(path)
			}
		}
	}
	// The os.Create calls above truncated the replica's files, so a Disk
	// cached against the previous copy is stale NOW — not at EndGraph. A
	// copy that fails partway must not leave the old handle cached over
	// the mangled files (a later Count would read new bytes through old
	// metadata); dropping the entry here means any Count racing or
	// following a failed transfer gets an honest open error instead, and
	// the generation bump keeps a graph.Open that started before this
	// point from re-poisoning the cache with its doomed handle.
	delete(n.disks, args.Name)
	if n.diskGen == nil {
		n.diskGen = make(map[string]int)
	}
	n.diskGen[args.Name]++
	n.curName = args.Name
	n.curToken = args.Token
	n.received = 0
	return nil
}

// replicaPath maps a transfer file kind to its path under a replica base.
func replicaPath(base string, kind FileKind) (string, error) {
	switch kind {
	case FileMeta:
		return graph.MetaPath(base), nil
	case FileDeg:
		return graph.DegPath(base), nil
	case FileAdj:
		return graph.AdjPath(base), nil
	case FileCAdj:
		return graph.CAdjPath(base), nil
	case FileCIdx:
		return graph.CIdxPath(base), nil
	}
	return "", fmt.Errorf("cluster: unknown file kind %q", kind)
}

// GraphChunk appends one chunk to a replica file.
func (n *Node) GraphChunk(args *ChunkArgs, reply *struct{}) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.incoming == nil {
		return fmt.Errorf("cluster: node %s: no transfer in progress", n.name)
	}
	if args.Token != n.curToken {
		return fmt.Errorf("cluster: node %s: transfer superseded", n.name)
	}
	f, ok := n.incoming[args.Kind]
	if !ok {
		return fmt.Errorf("cluster: node %s: unknown file kind %q", n.name, args.Kind)
	}
	k, err := f.Write(args.Data)
	n.received += int64(k)
	return err
}

// EndGraph finalizes a transfer.
func (n *Node) EndGraph(args *EndGraphArgs, reply *EndGraphReply) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.incoming == nil {
		return fmt.Errorf("cluster: node %s: no transfer in progress", n.name)
	}
	if args.Token != n.curToken {
		return fmt.Errorf("cluster: node %s: transfer superseded", n.name)
	}
	var firstErr error
	for _, f := range n.incoming {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	n.incoming = nil
	// The replica just changed on disk; a cached handle on the old copy
	// (metadata, degree index) is stale, and any graph.Open racing this
	// transfer read old files — the generation bump keeps its result out
	// of the cache.
	delete(n.disks, n.curName)
	if n.diskGen == nil {
		n.diskGen = make(map[string]int)
	}
	n.diskGen[n.curName]++
	reply.BytesReceived = n.received
	return firstErr
}

// openReplica opens (or returns the cached handle on) a received graph.
// The open runs outside the node mutex (it reads the whole degree file),
// so the insert re-checks the replica generation: a straggler that opened
// the pre-replication copy returns it for its own doomed run but never
// caches it.
func (n *Node) openReplica(name string) (*graph.Disk, error) {
	n.mu.Lock()
	if d, ok := n.disks[name]; ok {
		n.mu.Unlock()
		return d, nil
	}
	gen := n.diskGen[name]
	n.mu.Unlock()
	d, err := graph.Open(n.base(name))
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.diskGen[name] == gen {
		if n.disks == nil {
			n.disks = make(map[string]*graph.Disk)
		}
		n.disks[name] = d
	}
	n.mu.Unlock()
	return d, nil
}

func (n *Node) abortLocked() {
	for _, f := range n.incoming {
		f.Close()
		os.Remove(f.Name())
	}
	n.incoming = nil
}

// Count runs the node's calculation phase: one MGT runner per assigned
// range against the local replica. When args.RunID is set the run is
// registered for cancellation: a Cancel RPC with the same id (or a server
// shutdown) makes every runner abort within one memory window and Count
// return the cancellation error.
//
// Count is idempotent: it only reads the replica, so re-executing the same
// work unit — on this node or another — after a presumed failure produces
// byte-identical results. The master's recovery layer leans on this: a
// reassigned unit keeps its RunID, and at most one result per unit is ever
// taken (a failed attempt contributes nothing).
func (n *Node) Count(args *CountArgs, reply *CountReply) error {
	start := time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// A traced master asks for spans back: record the node's calculation
	// into a local trace (the engine's cursor plumbing picks it up through
	// the context) and export it in wire form. The master re-parents the
	// node.count root under its dispatch span.
	var tr *obs.Trace
	rootSpan := obs.NoSpan
	if args.TraceSpan != 0 {
		tr = obs.NewTrace(0)
		rootSpan = tr.Begin(obs.SpanNodeCount, obs.NoSpan)
		ctx = obs.ContextWithCursor(ctx, obs.Cursor{T: tr, Span: rootSpan, Worker: -1})
	}
	if args.RunID != "" {
		n.mu.Lock()
		if _, dead := n.cancelledRuns[args.RunID]; dead {
			delete(n.cancelledRuns, args.RunID)
			n.mu.Unlock()
			return context.Canceled
		}
		if n.runs == nil {
			n.runs = make(map[string]context.CancelFunc)
		}
		n.runs[args.RunID] = cancel
		n.mu.Unlock()
		defer func() {
			n.mu.Lock()
			delete(n.runs, args.RunID)
			n.mu.Unlock()
		}()
	}
	d, err := n.openReplica(args.GraphName)
	if err != nil {
		return fmt.Errorf("cluster: node %s: open replica: %w", n.name, err)
	}
	scanKind, err := scan.ParseSource(args.Scan)
	if err != nil {
		return fmt.Errorf("cluster: node %s: %w", n.name, err)
	}
	kernelKind, err := scan.ParseKernel(args.Kernel)
	if err != nil {
		return fmt.Errorf("cluster: node %s: %w", n.name, err)
	}
	schedMode, err := sched.ParseMode(args.Sched)
	if err != nil {
		return fmt.Errorf("cluster: node %s: %w", n.name, err)
	}
	workers := len(args.Ranges)
	if schedMode == sched.Stealing && args.Workers > 0 {
		workers = args.Workers
	}
	opt := core.Options{
		Workers:  workers,
		MemEdges: args.MemEdges,
		BufBytes: args.BufBytes,
		Scan:     scanKind,
		Kernel:   kernelKind,
		Sched:    schedMode,
	}
	// Sinks are per range in both modes: a static range is one runner's
	// whole responsibility, a stealing range is one chunk of the master's
	// global list. Either way, concatenating the buffers in range order
	// keeps the listing deterministic under dynamic assignment.
	var buffers []*bytes.Buffer
	if args.List {
		opt.Sinks = make([]mgt.Sink, len(args.Ranges))
		buffers = make([]*bytes.Buffer, len(args.Ranges))
		for i := range opt.Sinks {
			buffers[i] = &bytes.Buffer{}
			opt.Sinks[i] = mgt.NewFileSink(buffers[i])
		}
	}
	var stats []core.WorkerStat
	var srcIO ioacct.Stats
	if schedMode == sched.Stealing {
		stats, _, srcIO, err = core.RunChunks(ctx, d, args.Ranges, opt)
	} else {
		stats, srcIO, err = core.RunRanges(ctx, d, args.Ranges, opt)
	}
	if err != nil {
		return err
	}
	reply.Workers = stats
	reply.SourceIO = srcIO
	for _, w := range stats {
		reply.Triangles += w.Stats.Triangles
	}
	if args.List {
		for i, sink := range opt.Sinks {
			if err := sink.(*mgt.FileSink).Flush(); err != nil {
				return err
			}
			reply.Triples = append(reply.Triples, buffers[i].Bytes()...)
		}
	}
	reply.CalcTime = time.Since(start)
	if tr != nil {
		tr.SetAttr(rootSpan, "ranges", int64(len(args.Ranges)))
		tr.SetAttr(rootSpan, "triangles", int64(reply.Triangles))
		tr.End(rootSpan)
		reply.Spans = tr.Export()
	}
	return nil
}

// Cancel aborts the in-flight Count registered under args.RunID. If the
// Count has not registered yet, the id is tombstoned so the registration
// aborts on arrival — without this, a Cancel racing ahead of its Count
// would be lost and the run would compute to completion uncancellably.
func (n *Node) Cancel(args *CancelArgs, reply *CancelReply) error {
	n.mu.Lock()
	cancel, ok := n.runs[args.RunID]
	if !ok && args.RunID != "" {
		if n.cancelledRuns == nil {
			n.cancelledRuns = make(map[string]struct{})
		}
		if len(n.cancelledRuns) >= maxCancelTombstones {
			clear(n.cancelledRuns)
		}
		n.cancelledRuns[args.RunID] = struct{}{}
	}
	n.mu.Unlock()
	if ok {
		cancel()
	}
	reply.Found = ok
	return nil
}

// cancelActive aborts every in-flight Count; used by Server.Close so a
// worker shutdown does not leave runners computing for a master that will
// never hear the answer.
func (n *Node) cancelActive() {
	n.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(n.runs))
	for _, c := range n.runs {
		cancels = append(cancels, c)
	}
	n.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Server wraps a Node in an rpc.Server bound to a listener.
type Server struct {
	Node *Node
	lis  net.Listener
	rpc  *rpc.Server

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// Serve starts serving the node's RPCs on lis in a background goroutine and
// returns immediately. Use Close to stop.
func Serve(node *Node, lis net.Listener) (*Server, error) {
	return serveRcvr(node, node, lis)
}

// serveRcvr registers rcvr as the "Node" RPC service while lifecycle
// operations (cancellation on Close) act on node. Production callers pass
// the node twice (via Serve); the chaos tests pass a wrapper that embeds
// *Node and overrides individual RPCs to inject mid-run failures.
func serveRcvr(rcvr any, node *Node, lis net.Listener) (*Server, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Node", rcvr); err != nil {
		return nil, err
	}
	s := &Server{Node: node, lis: lis, rpc: srv, conns: make(map[net.Conn]struct{})}
	go s.acceptLoop()
	return s, nil
}

// Listen starts a node server on addr ("host:port"; ":0" picks a free
// port).
func Listen(node *Node, addr string) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(node, lis)
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go func() {
			s.rpc.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Addr reports the server's listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops accepting, cancels the node's in-flight calculations, and
// closes live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.Node.cancelActive()
	err := s.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

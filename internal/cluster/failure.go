// Fault tolerance for the distributed protocol (DESIGN.md §9): failure
// detection (per-RPC deadlines on the handshake, a lightweight heartbeat
// for partitioned or wedged nodes, and the TCP connection itself for
// crashed ones) plus the failure log a degraded-but-successful run reports
// through Result.Failures.

package cluster

import (
	"context"
	"log/slog"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// DefaultMaxRetries is how many times one unit of failed work (a
	// static range group or a stealing chunk batch) may be reassigned to
	// another node before the run gives up, when Config.MaxRetries is
	// zero. Two reassignments tolerate two distinct node deaths on the
	// same work unit — beyond that the cluster is degrading too fast for
	// the run to be worth finishing.
	DefaultMaxRetries = 2
	// DefaultHeartbeatInterval is the master→node ping period when
	// Config.HeartbeatInterval is zero.
	DefaultHeartbeatInterval = 2 * time.Second
	// heartbeatMissLimit scales the reply deadline of one outstanding
	// ping: a node whose ping goes unanswered for missLimit × interval is
	// declared dead. Detection latency is about (missLimit+1) × interval;
	// a node merely pausing (GC, CPU saturation, a large reply occupying
	// the connection) for less than missLimit intervals is never falsely
	// killed.
	heartbeatMissLimit = 3
	// dialTimeout bounds the TCP connect to a node; a partitioned address
	// must fail the dial, not hang the driver.
	dialTimeout = 10 * time.Second
	// helloTimeout is the per-RPC deadline on the handshake — the one call
	// issued before the heartbeat starts, so it needs its own bound.
	helloTimeout = 30 * time.Second
	// copyTimeout is the per-RPC deadline on the replica-transfer calls
	// (BeginGraph, each GraphChunk, EndGraph). The heartbeat does not run
	// during the copy — on a slow uplink pings would queue behind the
	// graph chunks monopolizing the connection and a healthy worker would
	// be declared dead — so a wedged node mid-copy is instead caught by
	// its current chunk RPC missing this (deliberately generous: even a
	// 10 KiB/s link moves a 256 KiB chunk in ~26 s) deadline.
	copyTimeout = 2 * time.Minute
)

// Failure records one detected node failure during a run. A run that
// recovers reports them in Result.Failures — partial degradation is
// observable instead of fatal; a run that cannot recover reports the
// underlying errors joined.
type Failure struct {
	// Node is the node's self-reported name ("" if it failed before the
	// handshake completed).
	Node string
	// Addr is the node's RPC address.
	Addr string
	// Slot is the node's index in the run (the master is 0).
	Slot int
	// Chunk is the global plan index of the failed work unit's first
	// range: a chunk batch under stealing, a range group under static
	// recovery. -1 when the node failed outside a calculation — dial,
	// handshake, or replica copy.
	Chunk int
	// Ranges is how many plan ranges the failed work unit held (0 for
	// dial/copy failures).
	Ranges int
	// Retries is how many times the work unit had already been reassigned
	// when this failure happened (0 for a first failure).
	Retries int
	// Err is the failure's error text.
	Err string
	// Time is when the master detected the failure.
	Time time.Time
}

// failureLog is the run's thread-safe failure accumulator. With a logger
// attached (Config.Log) every detected failure is also warned about the
// moment it happens, not just reported in Result.Failures at the end.
type failureLog struct {
	log *slog.Logger
	mu  sync.Mutex
	fs  []Failure
}

func (l *failureLog) add(f Failure) {
	f.Time = time.Now()
	l.mu.Lock()
	l.fs = append(l.fs, f)
	l.mu.Unlock()
	if l.log != nil {
		l.log.Warn("cluster node failure",
			"node", f.Node, "addr", f.Addr, "slot", f.Slot,
			"chunk", f.Chunk, "ranges", f.Ranges, "retries", f.Retries,
			"err", f.Err)
	}
}

func (l *failureLog) list() []Failure {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Failure(nil), l.fs...)
}

// monitoredConn wraps a node connection and records when bytes last
// arrived from the node. The heartbeat consults it before declaring a
// node dead: a ping whose reply is queued behind a multi-second transfer
// (net/rpc serializes replies, so a large listing reply delays the ping's)
// still moves bytes constantly, while a partitioned or wedged node moves
// none — read activity, not ping latency, is the honest liveness signal.
type monitoredConn struct {
	net.Conn
	lastRead atomic.Int64 // unix nanos of the last successful read
}

func (c *monitoredConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.lastRead.Store(time.Now().UnixNano())
	}
	return n, err
}

func (c *monitoredConn) sinceRead() time.Duration {
	return time.Duration(time.Now().UnixNano() - c.lastRead.Load())
}

// startHeartbeat pings the node every interval on the shared connection
// (net/rpc multiplexes, so pings travel alongside a long-running Count).
// One ping is outstanding at a time; the node is declared dead — client
// closed, failing every pending RPC, which converts a silent partition or
// a wedged worker into an ordinary RPC error the drivers already recover
// from — only when the ping has gone unanswered for heartbeatMissLimit ×
// interval AND no bytes have arrived from the node for that same window.
// The activity check is what keeps a healthy node streaming a large
// listing reply (which delays the ping reply behind it, possibly for many
// intervals) alive: its connection is never silent. A crashed worker is
// detected faster, by its TCP connection dying on its own. Non-positive
// interval disables the heartbeat (returns a no-op stop).
func startHeartbeat(client *rpc.Client, conn *monitoredConn, interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	window := heartbeatMissLimit * interval
	stopCh := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-tick.C:
			}
			call := client.Go("Node.Ping", &PingArgs{}, &PingReply{}, make(chan *rpc.Call, 1))
		await:
			for {
				deadline := time.NewTimer(window)
				select {
				case c := <-call.Done:
					deadline.Stop()
					if c.Error != nil {
						// The connection is already dead (rpc.ErrShutdown):
						// pending calls have failed on their own; nothing
						// left to watch.
						return
					}
					break await
				case <-deadline.C:
					if conn.sinceRead() < window {
						// The reply is late but bytes are flowing — a
						// large transfer ahead of it in the pipe, not a
						// dead node. Keep waiting.
						continue
					}
					client.Close()
					return
				case <-stopCh:
					deadline.Stop()
					return
				}
			}
		}
	}()
	return func() { once.Do(func() { close(stopCh) }) }
}

// nodeConn is one dialed node: the RPC client plus its heartbeat monitor.
type nodeConn struct {
	addr   string
	client *rpc.Client
	conn   *monitoredConn
	hb     time.Duration
	stopHB func()
}

// dialNode connects to a node with a bounded dial and performs the
// handshake under its own per-RPC deadline. The heartbeat is NOT started
// here: the copy phase monopolizes the connection with graph chunks
// (pings behind them would miss on slow uplinks) and is protected by
// per-RPC copyTimeout deadlines instead — callers invoke watch() when
// they enter the calculation phase, whose long-running Counts have no
// deadline of their own. The caller must close() the returned conn on
// every path.
func dialNode(ctx context.Context, cfg Config, addr string) (*nodeConn, *HelloReply, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, nil, &nodeError{addr: addr, op: "dial", err: err}
	}
	mc := &monitoredConn{Conn: conn}
	mc.lastRead.Store(time.Now().UnixNano())
	client := rpc.NewClient(mc)
	helloCtx, cancel := context.WithTimeout(ctx, helloTimeout)
	defer cancel()
	var hello HelloReply
	if err := callCtx(helloCtx, client, "Node.Hello", &HelloArgs{}, &hello); err != nil {
		client.Close()
		return nil, nil, &nodeError{addr: addr, op: "hello", err: err}
	}
	return &nodeConn{addr: addr, client: client, conn: mc, hb: cfg.HeartbeatInterval, stopHB: func() {}}, &hello, nil
}

// watch starts the liveness heartbeat; call it once, when the connection
// enters its calculation phase. Idempotent close() remains safe either way.
func (c *nodeConn) watch() {
	c.stopHB = startHeartbeat(c.client, c.conn, c.hb)
}

func (c *nodeConn) close() {
	c.stopHB()
	c.client.Close()
}

// nodeError wraps a node-level failure with its address and operation, so
// joined error lists name every failing node.
type nodeError struct {
	addr string
	op   string
	err  error
}

func (e *nodeError) Error() string { return "cluster: " + e.op + " " + e.addr + ": " + e.err.Error() }
func (e *nodeError) Unwrap() error { return e.err }

// calcFailure tags an error as having occurred during a node's
// calculation phase — after its replica landed. The static triage uses
// the tag to attribute the failure to the node's work unit (its plan
// index and range count) instead of logging it as a pre-calculation
// dial/copy failure.
type calcFailure struct{ err error }

func (e *calcFailure) Error() string { return e.err.Error() }
func (e *calcFailure) Unwrap() error { return e.err }

package service

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Metrics is the service's cumulative counter set, exposed as plain
// `name value` lines on GET /metrics (a Prometheus-scrapable subset that
// stays grep-able from a shell). All fields are monotonically increasing
// except the gauges the server samples at scrape time (queue depth, slots
// in use, open graphs).
type Metrics struct {
	// Engine runs: started counts actual executions (the run-counter the
	// single-flight assertions use); shared counts requests that joined an
	// in-flight identical run instead of starting their own.
	RunsStarted   atomic.Uint64
	RunsCompleted atomic.Uint64
	RunsFailed    atomic.Uint64
	RunsShared    atomic.Uint64

	// Result cache.
	CacheHits   atomic.Uint64
	CacheMisses atomic.Uint64

	// Streaming listings.
	StreamsStarted atomic.Uint64
	StreamsBroken  atomic.Uint64 // client gone / limit hit before the run finished
	TrianglesSent  atomic.Uint64

	// Registry churn.
	Registered atomic.Uint64
	Evicted    atomic.Uint64

	// Live-graph mutations: accepted batches and the edge updates they
	// carried (rejected batches count in neither).
	MutationBatches atomic.Uint64
	EdgesApplied    atomic.Uint64

	// Distributed runs: worker failures the cluster layer detected and
	// recovered from (the run still produced an exact result). A steadily
	// climbing value means a flaky worker is being carried by its peers.
	ClusterNodeFailures atomic.Uint64

	// Engine I/O attributed to runs the service executed: the scan
	// source's own reads (shared broadcasts, mem preloads) and the
	// per-worker window reads. A cache hit adds exactly zero to both.
	SourceBytesRead atomic.Int64
	WorkerBytesRead atomic.Int64
}

// snapshot renders the counters plus caller-supplied gauges. Lines are
// sorted so the output is diff-stable.
func (m *Metrics) snapshot(gauges map[string]int64) []string {
	vals := map[string]int64{
		"pdtl_runs_started":          int64(m.RunsStarted.Load()),
		"pdtl_runs_completed":        int64(m.RunsCompleted.Load()),
		"pdtl_runs_failed":           int64(m.RunsFailed.Load()),
		"pdtl_runs_shared":           int64(m.RunsShared.Load()),
		"pdtl_cache_hits":            int64(m.CacheHits.Load()),
		"pdtl_cache_misses":          int64(m.CacheMisses.Load()),
		"pdtl_streams_started":       int64(m.StreamsStarted.Load()),
		"pdtl_streams_broken":        int64(m.StreamsBroken.Load()),
		"pdtl_triangles_sent":        int64(m.TrianglesSent.Load()),
		"pdtl_graphs_registered":     int64(m.Registered.Load()),
		"pdtl_graphs_evicted":        int64(m.Evicted.Load()),
		"pdtl_mutation_batches":      int64(m.MutationBatches.Load()),
		"pdtl_edges_applied":         int64(m.EdgesApplied.Load()),
		"pdtl_cluster_node_failures": int64(m.ClusterNodeFailures.Load()),
		"pdtl_source_bytes_read":     m.SourceBytesRead.Load(),
		"pdtl_worker_bytes_read":     m.WorkerBytesRead.Load(),
	}
	for k, v := range gauges {
		vals[k] = v
	}
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines := make([]string, len(keys))
	for i, k := range keys {
		lines[i] = fmt.Sprintf("%s %d", k, vals[k])
	}
	return lines
}

// WriteTo writes the metric lines (counters plus gauges) to w.
func (m *Metrics) writeTo(w io.Writer, gauges map[string]int64) error {
	for _, line := range m.snapshot(gauges) {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

package service

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"pdtl/internal/obs"
)

// Metrics is the service's cumulative counter set, exposed in Prometheus
// text exposition format on GET /metrics. The counters are plain atomics —
// every increment site predates the obs registry and is untouched — bridged
// into the registry as scrape-time CounterFuncs, so the rendered series
// names stay exactly what they have always been (`pdtl_cache_hits 1` greps
// keep working) while scrapes no longer build and sort a map per request.
// The histograms are registered by registerWith; all are nil-safe, so a
// zero Metrics (as tests construct) observes into the void.
type Metrics struct {
	// Engine runs: started counts actual executions (the run-counter the
	// single-flight assertions use); shared counts requests that joined an
	// in-flight identical run instead of starting their own.
	RunsStarted   atomic.Uint64
	RunsCompleted atomic.Uint64
	RunsFailed    atomic.Uint64
	RunsShared    atomic.Uint64

	// Result cache.
	CacheHits   atomic.Uint64
	CacheMisses atomic.Uint64

	// Streaming listings.
	StreamsStarted atomic.Uint64
	StreamsBroken  atomic.Uint64 // client gone / limit hit before the run finished
	TrianglesSent  atomic.Uint64

	// Registry churn.
	Registered atomic.Uint64
	Evicted    atomic.Uint64

	// Live-graph mutations: accepted batches and the edge updates they
	// carried (rejected batches count in neither).
	MutationBatches atomic.Uint64
	EdgesApplied    atomic.Uint64

	// Distributed runs: worker failures the cluster layer detected and
	// recovered from (the run still produced an exact result). A steadily
	// climbing value means a flaky worker is being carried by its peers.
	ClusterNodeFailures atomic.Uint64

	// Engine I/O attributed to runs the service executed: the scan
	// source's own reads (shared broadcasts, mem preloads) and the
	// per-worker window reads. A cache hit adds exactly zero to both.
	SourceBytesRead atomic.Int64
	WorkerBytesRead atomic.Int64

	// Latency and size distributions, registered by registerWith (nil on a
	// bare Metrics, where observing is a no-op).

	// RunDuration is the wall time of executed (origin=run) engine runs.
	RunDuration *obs.Histogram
	// QueueWait is the time requests spent waiting for an admission slot.
	QueueWait *obs.Histogram
	// MutationBatchEdges is the edge-update count of applied batches.
	MutationBatchEdges *obs.Histogram
	// CompactionDuration is the wall time of explicit POST …/compact runs.
	CompactionDuration *obs.Histogram
}

// counterBridge adapts one pre-existing atomic counter for CounterFunc.
func counterBridge(v *atomic.Uint64) func() float64 {
	return func() float64 { return float64(v.Load()) }
}

// registerWith bridges every counter into the registry (scrape-time reads;
// the increment sites keep writing the atomics directly) and creates the
// histograms. Registration order is render order, so the output is
// diff-stable without any per-scrape sorting.
func (m *Metrics) registerWith(r *obs.Registry) {
	r.CounterFunc("pdtl_runs_started", "Engine runs actually executed.", counterBridge(&m.RunsStarted))
	r.CounterFunc("pdtl_runs_completed", "Engine runs that finished successfully.", counterBridge(&m.RunsCompleted))
	r.CounterFunc("pdtl_runs_failed", "Engine runs that returned an error.", counterBridge(&m.RunsFailed))
	r.CounterFunc("pdtl_runs_shared", "Requests that joined an identical in-flight run.", counterBridge(&m.RunsShared))
	r.CounterFunc("pdtl_cache_hits", "Requests served from the memoized result cache.", counterBridge(&m.CacheHits))
	r.CounterFunc("pdtl_cache_misses", "Requests that missed the result cache.", counterBridge(&m.CacheMisses))
	r.CounterFunc("pdtl_streams_started", "Triangle listing streams started.", counterBridge(&m.StreamsStarted))
	r.CounterFunc("pdtl_streams_broken", "Listing streams that ended before the run finished.", counterBridge(&m.StreamsBroken))
	r.CounterFunc("pdtl_triangles_sent", "Triangles written to listing streams.", counterBridge(&m.TrianglesSent))
	r.CounterFunc("pdtl_graphs_registered", "Graph registrations accepted.", counterBridge(&m.Registered))
	r.CounterFunc("pdtl_graphs_evicted", "Graphs evicted via the API.", counterBridge(&m.Evicted))
	r.CounterFunc("pdtl_mutation_batches", "Live mutation batches applied.", counterBridge(&m.MutationBatches))
	r.CounterFunc("pdtl_edges_applied", "Edge updates applied across mutation batches.", counterBridge(&m.EdgesApplied))
	r.CounterFunc("pdtl_cluster_node_failures", "Worker failures distributed runs detected and recovered from.", counterBridge(&m.ClusterNodeFailures))
	r.CounterFunc("pdtl_source_bytes_read", "Scan-source disk bytes read by executed runs.", func() float64 { return float64(m.SourceBytesRead.Load()) })
	r.CounterFunc("pdtl_worker_bytes_read", "Per-worker disk bytes read by executed runs.", func() float64 { return float64(m.WorkerBytesRead.Load()) })

	m.RunDuration = r.Histogram("pdtl_run_duration_seconds",
		"Wall time of executed (origin=run) engine runs.", obs.DefDurationBuckets)
	m.QueueWait = r.Histogram("pdtl_queue_wait_seconds",
		"Time requests waited for an admission slot.", obs.DefDurationBuckets)
	m.MutationBatchEdges = r.Histogram("pdtl_mutation_batch_edges",
		"Edge updates per applied live mutation batch.", obs.DefSizeBuckets)
	m.CompactionDuration = r.Histogram("pdtl_compaction_duration_seconds",
		"Wall time of explicit live-graph compactions.", obs.DefDurationBuckets)
}

// buildInfoLabels renders the pdtl_build_info label set.
func buildInfoLabels() string {
	return fmt.Sprintf("go_version=%q,goos=%q,goarch=%q",
		runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// checkGoroutines polls until the goroutine count settles back to the
// baseline — the PR 2 leak-check idiom (handle_test.go), shared by the
// streaming-teardown and shutdown tests.
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// getJSON decodes one JSON API reply.
func getJSON(t *testing.T, client *http.Client, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d; body: %s", url, resp.StatusCode, wantStatus, body)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
	}
	return m
}

func postJSON(t *testing.T, client *http.Client, url string, body any, wantStatus int) map[string]any {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	reply, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d, want %d; body: %s", url, resp.StatusCode, wantStatus, reply)
	}
	var m map[string]any
	if err := json.Unmarshal(reply, &m); err != nil {
		t.Fatalf("POST %s: bad JSON %q: %v", url, reply, err)
	}
	return m
}

func TestServerRegisterCountCache(t *testing.T) {
	base := genStore(t, 8, 10)
	svc := New(Config{RunSlots: 2, QueueDepth: 8})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	client := ts.Client()

	// Health before any graph.
	h := getJSON(t, client, ts.URL+"/healthz", 200)
	if h["status"] != "ok" {
		t.Fatalf("healthz = %v", h)
	}

	// Register.
	reg := postJSON(t, client, ts.URL+"/v1/graphs", registerRequest{Name: "g", Base: base}, http.StatusCreated)
	if reg["name"] != "g" {
		t.Fatalf("register reply = %v", reg)
	}

	// Cold count: an engine run.
	c1 := getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=2&mem=4096", 200)
	if c1["origin"] != "run" || c1["triangles"].(float64) <= 0 {
		t.Fatalf("cold count = %v", c1)
	}
	if c1["engine_runs"].(float64) != 1 {
		t.Fatalf("engine_runs after cold count = %v", c1["engine_runs"])
	}

	srcBefore := svc.Metrics().SourceBytesRead.Load()
	workerBefore := svc.Metrics().WorkerBytesRead.Load()

	// Identical repeat: cache hit, zero additional engine runs and zero I/O.
	c2 := getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=2&mem=4096", 200)
	if c2["origin"] != "cache" {
		t.Fatalf("repeat count origin = %v, want cache", c2["origin"])
	}
	if c2["triangles"] != c1["triangles"] {
		t.Fatalf("cache returned %v, want %v", c2["triangles"], c1["triangles"])
	}
	if c2["engine_runs"].(float64) != 1 {
		t.Fatalf("cache hit started an engine run: %v", c2["engine_runs"])
	}
	if got := svc.Metrics().SourceBytesRead.Load(); got != srcBefore {
		t.Fatalf("cache hit did source I/O: %d -> %d bytes", srcBefore, got)
	}
	if got := svc.Metrics().WorkerBytesRead.Load(); got != workerBefore {
		t.Fatalf("cache hit did worker I/O: %d -> %d bytes", workerBefore, got)
	}

	// A different option spelling of the same canonical run is still the
	// same cache slot (scan=auto resolves to the same source).
	c3 := getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=2&mem=4096&scan=auto&kernel=merge", 200)
	if c3["origin"] != "cache" {
		t.Fatalf("normalized-options count origin = %v, want cache", c3["origin"])
	}

	// Different options: a fresh run.
	c4 := getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=1&mem=4096", 200)
	if c4["origin"] != "run" || c4["triangles"] != c1["triangles"] {
		t.Fatalf("new-options count = %v", c4)
	}

	// Re-registration invalidates: the same request runs again.
	postJSON(t, client, ts.URL+"/v1/graphs", registerRequest{Name: "g", Base: base}, http.StatusCreated)
	c5 := getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=2&mem=4096", 200)
	if c5["origin"] != "run" {
		t.Fatalf("post-re-register count origin = %v, want run", c5["origin"])
	}
	if c5["triangles"] != c1["triangles"] {
		t.Fatalf("post-re-register count = %v, want %v", c5["triangles"], c1["triangles"])
	}
}

// TestServerSingleFlight is the acceptance check: two concurrent identical
// GET /count requests on a cold graph trigger exactly one engine run. The
// run slot is deterministically blocked by a paused stream on a second
// graph, so the leader queues in admission while the joiner arrives.
func TestServerSingleFlight(t *testing.T) {
	blockBase := genStoreEF(t, 12, 16, 11)
	coldBase := genStore(t, 8, 12)
	svc := New(Config{RunSlots: 1, QueueDepth: 8})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	client := ts.Client()

	postJSON(t, client, ts.URL+"/v1/graphs", registerRequest{Name: "block", Base: blockBase}, http.StatusCreated)
	postJSON(t, client, ts.URL+"/v1/graphs", registerRequest{Name: "cold", Base: coldBase}, http.StatusCreated)

	// Occupy the only run slot: stream without reading past the first line.
	streamResp, err := client.Get(ts.URL + "/v1/graphs/block/triangles?workers=1&mem=256")
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(streamResp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return svc.adm.InUse() == 1 })

	// Two identical cold counts: the leader queues for the slot, the
	// second joins its flight.
	type result struct {
		m   map[string]any
		err error
	}
	results := make(chan result, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get(ts.URL + "/v1/graphs/cold/count?workers=2&mem=4096")
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != 200 {
				results <- result{err: fmt.Errorf("status %d: %s", resp.StatusCode, body)}
				return
			}
			var m map[string]any
			if err := json.Unmarshal(body, &m); err != nil {
				results <- result{err: err}
				return
			}
			results <- result{m: m}
		}()
	}
	// Exactly one request must reach the admission queue (the flight
	// leader); the other has joined the flight. Both are in place once the
	// queue is non-empty and one cache miss is recorded.
	waitFor(t, func() bool { return svc.adm.QueueDepth() == 1 })
	waitFor(t, func() bool {
		e, err := svc.Registry().Get("cold")
		if err != nil {
			return false
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		for _, f := range e.flights {
			if f.waiters.Load() == 2 {
				return true
			}
		}
		return false
	})

	// Release the slot: drop the stream; its run is torn down and the
	// queued leader proceeds.
	streamResp.Body.Close()
	wg.Wait()
	close(results)

	var origins []string
	var triangles []float64
	for r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
		origins = append(origins, r.m["origin"].(string))
		triangles = append(triangles, r.m["triangles"].(float64))
	}
	if len(triangles) != 2 || triangles[0] != triangles[1] {
		t.Fatalf("triangle counts disagree: %v", triangles)
	}
	// Exactly one engine run on the cold handle — the single-flight
	// assertion, via the run counter.
	e, err := svc.Registry().Get("cold")
	if err != nil {
		t.Fatal(err)
	}
	if runs := e.Graph().Runs(); runs != 1 {
		t.Fatalf("engine runs on cold graph = %d, want exactly 1", runs)
	}
	var runCount, sharedCount int
	for _, o := range origins {
		switch o {
		case "run":
			runCount++
		case "shared":
			sharedCount++
		}
	}
	if runCount != 1 || sharedCount != 1 {
		t.Fatalf("origins = %v, want one run and one shared", origins)
	}
	if got := svc.Metrics().RunsShared.Load(); got != 1 {
		t.Fatalf("RunsShared = %d, want 1", got)
	}
}

// TestServerStreamDisconnectTeardown is the acceptance check: killing a
// streaming /triangles client mid-response tears the engine run down with
// no leaked goroutines and releases the run slot.
func TestServerStreamDisconnectTeardown(t *testing.T) {
	base := genStoreEF(t, 12, 16, 13)
	svc := New(Config{RunSlots: 1, QueueDepth: 4})
	ts := httptest.NewServer(svc)
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/graphs", registerRequest{Name: "g", Base: base}, http.StatusCreated)

	// Warm the handle so the loop below measures runs, not orientation.
	getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=1&mem=65536", 200)

	baseline := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		resp, err := client.Get(ts.URL + "/v1/graphs/g/triangles?workers=2&mem=256")
		if err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(resp.Body)
		for j := 0; j < 3; j++ {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("stream read %d: %v", j, err)
			}
			var tri map[string]uint32
			if err := json.Unmarshal([]byte(line), &tri); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", line, err)
			}
		}
		// Kill the client mid-stream: the handler's request context is
		// cancelled, the engine run aborts, the slot frees.
		resp.Body.Close()
		waitFor(t, func() bool { return svc.adm.InUse() == 0 })
	}
	checkGoroutines(t, baseline)
	if got := svc.Metrics().StreamsBroken.Load(); got != 3 {
		t.Errorf("StreamsBroken = %d, want 3", got)
	}

	// The service still works after the teardowns.
	c := getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=1&mem=65536", 200)
	if c["origin"] != "cache" {
		t.Errorf("post-teardown count origin = %v, want cache", c["origin"])
	}
	ts.Close()
	svc.Shutdown(context.Background())
}

func TestServerStreamLimit(t *testing.T) {
	base := genStore(t, 8, 14)
	svc := New(Config{})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/graphs", registerRequest{Name: "g", Base: base}, http.StatusCreated)

	resp, err := client.Get(ts.URL + "/v1/graphs/g/triangles?limit=7&workers=2&mem=4096")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 7 {
		t.Fatalf("limit=7 returned %d lines", len(lines))
	}
	for _, line := range lines {
		var tri struct{ U, V, W uint32 }
		if err := json.Unmarshal([]byte(line), &tri); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
	}
	waitFor(t, func() bool { return svc.adm.InUse() == 0 })
}

func TestServerAdmissionShedsWhenFull(t *testing.T) {
	blockBase := genStoreEF(t, 12, 16, 15)
	svc := New(Config{RunSlots: 1, QueueDepth: -1}) // no waiting at all
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/graphs", registerRequest{Name: "g", Base: blockBase}, http.StatusCreated)

	streamResp, err := client.Get(ts.URL + "/v1/graphs/g/triangles?workers=1&mem=256")
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(streamResp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return svc.adm.InUse() == 1 })

	resp, err := client.Get(ts.URL + "/v1/graphs/g/count?workers=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated count status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 reply missing Retry-After")
	}
	streamResp.Body.Close()
}

func TestServerEvictAndUnknown(t *testing.T) {
	base := genStore(t, 7, 16)
	svc := New(Config{})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/graphs", registerRequest{Name: "g", Base: base}, http.StatusCreated)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/g", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("evict status = %d", resp.StatusCode)
	}
	getJSON(t, client, ts.URL+"/v1/graphs/g/count", http.StatusNotFound)
	getJSON(t, client, ts.URL+"/v1/graphs/never/count", http.StatusNotFound)
}

func TestServerEstimateAndDegrees(t *testing.T) {
	base := genStore(t, 9, 17)
	svc := New(Config{})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/graphs", registerRequest{Name: "g", Base: base}, http.StatusCreated)

	exact := getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=2", 200)["triangles"].(float64)

	est := postJSON(t, client, ts.URL+"/v1/graphs/g/estimate",
		estimateRequest{Method: "doulion", P: 0.5, Seed: 3}, 200)
	if est["origin"] != "run" {
		t.Fatalf("estimate origin = %v", est["origin"])
	}
	got := est["estimate"].(float64)
	if got < exact/3 || got > exact*3 {
		t.Errorf("doulion estimate %.0f far from exact %.0f", got, exact)
	}
	// Identical estimate parameters memoize.
	est2 := postJSON(t, client, ts.URL+"/v1/graphs/g/estimate",
		estimateRequest{Method: "doulion", P: 0.5, Seed: 3}, 200)
	if est2["origin"] != "cache" || est2["estimate"] != est["estimate"] {
		t.Fatalf("repeat estimate = %v", est2)
	}
	postJSON(t, client, ts.URL+"/v1/graphs/g/estimate",
		estimateRequest{Method: "doulion", P: 1.5}, http.StatusBadRequest)

	deg := getJSON(t, client, ts.URL+"/v1/graphs/g/degrees?workers=2&top=5", 200)
	if deg["triangles"].(float64) != exact {
		t.Fatalf("degrees triangles = %v, want %v", deg["triangles"], exact)
	}
	top := deg["top"].([]any)
	if len(top) == 0 || len(top) > 5 {
		t.Fatalf("top list size = %d", len(top))
	}
	prev := top[0].(map[string]any)["triangles"].(float64)
	for _, row := range top[1:] {
		cur := row.(map[string]any)["triangles"].(float64)
		if cur > prev {
			t.Fatalf("top list not descending: %v", top)
		}
		prev = cur
	}
	// Memoized: same options serve from cache.
	deg2 := getJSON(t, client, ts.URL+"/v1/graphs/g/degrees?workers=2&top=3", 200)
	if deg2["origin"] != "cache" {
		t.Fatalf("repeat degrees origin = %v", deg2["origin"])
	}
}

func TestServerRequestTimeout(t *testing.T) {
	base := genStore(t, 10, 18)
	svc := New(Config{})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/graphs", registerRequest{Name: "g", Base: base}, http.StatusCreated)

	// A 1 ns deadline cannot finish a run; the deadline maps onto the
	// engine's cancellation and surfaces as 504.
	resp, err := client.Get(ts.URL + "/v1/graphs/g/count?workers=1&mem=256&timeout=1ns")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("timed-out count status = %d (%s), want 504", resp.StatusCode, body)
	}
	getJSON(t, client, ts.URL+"/v1/graphs/g/count?timeout=bogus", http.StatusBadRequest)
}

func TestServerMetricsEndpoint(t *testing.T) {
	base := genStore(t, 7, 19)
	svc := New(Config{})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/graphs", registerRequest{Name: "g", Base: base}, http.StatusCreated)
	getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=1", 200)
	getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=1", 200)

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"pdtl_runs_started 1",
		"pdtl_cache_hits 1",
		"pdtl_graphs_open 1",
		"pdtl_run_queue_depth 0",
		"pdtl_source_bytes_read",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

package service

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestShutdownDrain is the graceful-drain contract in one scenario:
// Server.Shutdown during an in-flight streaming /triangles response cancels
// the engine run through the context plumbing (no leaked goroutines —
// checked with the PR 2 leak-check idiom), while the request queued behind
// it drains with a 503 instead of ever starting.
func TestShutdownDrain(t *testing.T) {
	base := genStoreEF(t, 12, 16, 20)
	svc := New(Config{RunSlots: 1, QueueDepth: 4})
	ts := httptest.NewServer(svc)
	client := ts.Client()
	postJSON(t, client, ts.URL+"/v1/graphs", registerRequest{Name: "g", Base: base}, http.StatusCreated)

	// Warm the handle so the stream below is a pure calculation run.
	warm := getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=1&mem=65536", 200)
	total := uint64(warm["triangles"].(float64))
	if total == 0 {
		t.Fatal("warm count found no triangles")
	}
	baseline := runtime.NumGoroutine()

	// In-flight stream holding the only run slot. The tiny memory budget
	// gives the run many windows, so the shutdown lands mid-run.
	var streamed atomic.Uint64
	streamDone := make(chan error, 1)
	go func() {
		resp, err := client.Get(ts.URL + "/v1/graphs/g/triangles?workers=2&mem=128")
		if err != nil {
			streamDone <- err
			return
		}
		defer resp.Body.Close()
		br := bufio.NewReader(resp.Body)
		for {
			if _, err := br.ReadString('\n'); err != nil {
				streamDone <- nil
				return
			}
			streamed.Add(1)
		}
	}()
	waitFor(t, func() bool { return svc.adm.InUse() == 1 && streamed.Load() > 0 })

	// A count request queued behind the stream.
	queuedDone := make(chan int, 1)
	go func() {
		resp, err := client.Get(ts.URL + "/v1/graphs/g/count?workers=2&mem=4096")
		if err != nil {
			queuedDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		queuedDone <- resp.StatusCode
	}()
	waitFor(t, func() bool { return svc.adm.QueueDepth() == 1 })

	// Drain. The stream's engine run is cancelled, the queued request is
	// shed, and every handler returns before Shutdown does.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown did not drain: %v", err)
	}
	if status := <-queuedDone; status != http.StatusServiceUnavailable {
		t.Fatalf("queued request status = %d, want 503", status)
	}
	if err := <-streamDone; err != nil {
		t.Fatalf("stream client error: %v", err)
	}
	if got := streamed.Load(); got >= total {
		t.Fatalf("stream was not cut short: %d of %d triangles arrived", got, total)
	}

	// The drained server answers health with 503 and rejects new work.
	h := getJSON(t, client, ts.URL+"/healthz", http.StatusServiceUnavailable)
	if h["status"] != "draining" {
		t.Fatalf("healthz during drain = %v", h)
	}
	getJSON(t, client, ts.URL+"/v1/graphs/g/count", http.StatusServiceUnavailable)

	ts.Close()
	checkGoroutines(t, baseline)

	// Shutdown is idempotent.
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServerTraceParam: ?trace=1 on a count that actually executes returns
// the run's phase trace inline (valid Chrome trace_event JSON with chunk
// spans), and the memoized repeat omits it — a cache hit has no run of its
// own to report.
func TestServerTraceParam(t *testing.T) {
	base := genStore(t, 8, 10)
	svc := New(Config{RunSlots: 2, QueueDepth: 8})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	client := ts.Client()

	postJSON(t, client, ts.URL+"/v1/graphs", registerRequest{Name: "g", Base: base}, http.StatusCreated)

	c1 := getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=2&mem=4096&trace=1", 200)
	if c1["origin"] != "run" {
		t.Fatalf("cold count origin = %v, want run", c1["origin"])
	}
	raw, ok := c1["trace"].(map[string]any)
	if !ok {
		t.Fatalf("executed ?trace=1 count has no trace object: %v", c1["trace"])
	}
	events, ok := raw["traceEvents"].([]any)
	if !ok || len(events) == 0 {
		t.Fatalf("trace has no traceEvents: %v", raw)
	}
	names := map[string]int{}
	for _, e := range events {
		names[e.(map[string]any)["name"].(string)]++
	}
	for _, want := range []string{"count", "calc", "chunk"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q span (got %v)", want, names)
		}
	}

	// The identical request hits the cache: same count, no trace.
	c2 := getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=2&mem=4096&trace=1", 200)
	if c2["origin"] != "cache" {
		t.Fatalf("repeat origin = %v, want cache", c2["origin"])
	}
	if _, present := c2["trace"]; present {
		t.Fatalf("cache hit carried a trace: %v", c2["trace"])
	}

	// An untraced request on a fresh key stays trace-free.
	c3 := getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=1&mem=4096", 200)
	if c3["origin"] != "run" {
		t.Fatalf("fresh-key origin = %v, want run", c3["origin"])
	}
	if _, present := c3["trace"]; present {
		t.Fatal("untraced run carried a trace")
	}
}

// TestMetricsExposition pins the Prometheus text format the obs registry
// renders: HELP/TYPE metadata, the legacy sample names unchanged, the run
// histogram counting executed runs only, build info, and the per-graph
// labeled families.
func TestMetricsExposition(t *testing.T) {
	base := genStore(t, 8, 10)
	svc := New(Config{RunSlots: 2, QueueDepth: 8})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	client := ts.Client()

	postJSON(t, client, ts.URL+"/v1/graphs", registerRequest{Name: "g", Base: base}, http.StatusCreated)
	getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=2&mem=4096", 200) // run
	getJSON(t, client, ts.URL+"/v1/graphs/g/count?workers=2&mem=4096", 200) // cache hit

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)

	for _, want := range []string{
		// Metadata for old and new families.
		"# HELP pdtl_runs_started ",
		"# TYPE pdtl_runs_started counter",
		"# TYPE pdtl_run_queue_depth gauge",
		"# TYPE pdtl_run_duration_seconds histogram",
		// Legacy sample lines, grep-compatible with the pre-registry format.
		"pdtl_runs_started 1",
		"pdtl_cache_hits 1",
		"pdtl_graphs_open 1",
		// One executed run observed; the cache hit must not be.
		"pdtl_run_duration_seconds_count 1",
		"pdtl_run_duration_seconds_sum ",
		`pdtl_run_duration_seconds_bucket{le="+Inf"} 1`,
		// The admission wait of that one run.
		"pdtl_queue_wait_seconds_count 1",
		// Build info and the labeled per-graph families.
		`pdtl_build_info{go_version="`,
		`pdtl_graph_runs_total{graph="g"} 1`,
		`pdtl_graph_cache_hits_total{graph="g"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Every sample family must be preceded by its HELP and TYPE.
	seen := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) >= 3 {
				seen[parts[2]] = true
			}
			continue
		}
		name, _, _ := strings.Cut(line, " ")
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, suffix); trimmed != name && seen[trimmed] {
				base = trimmed
				break
			}
		}
		if !seen[base] {
			t.Errorf("sample %q has no preceding # HELP/# TYPE", name)
		}
	}
}

// TestTraceJSONRoundTrips: the inline trace the handler embeds is the
// exact WriteJSON document — json.Valid and re-marshalable.
func TestTraceJSONRoundTrips(t *testing.T) {
	base := genStore(t, 8, 10)
	svc := New(Config{RunSlots: 2, QueueDepth: 8})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	client := ts.Client()

	postJSON(t, client, ts.URL+"/v1/graphs", registerRequest{Name: "g", Base: base}, http.StatusCreated)
	resp, err := client.Get(ts.URL + "/v1/graphs/g/count?workers=2&mem=4096&trace=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Trace json.RawMessage `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Trace) == 0 || !json.Valid(body.Trace) {
		t.Fatalf("embedded trace is not standalone-valid JSON: %.80s", body.Trace)
	}
}

package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrBusy is returned by Admission.Acquire when every run slot is taken and
// the wait queue is full — the request is shed immediately (HTTP 503) rather
// than queued unboundedly. PDTL runs are I/O-heavy; piling more of them onto
// a saturated disk only slows every run down, so the controller prefers fast
// rejection over unbounded latency.
var ErrBusy = errors.New("service: all run slots busy and the wait queue is full")

// ErrDraining is returned by Acquire once the admission controller has been
// closed: the server is shutting down and queued requests drain with 503s
// instead of starting new engine runs.
var ErrDraining = errors.New("service: server is draining")

// Admission bounds the number of concurrently executing engine runs and the
// number of requests allowed to wait for a slot. A request past both bounds
// is rejected with ErrBusy; a waiting request honors its context deadline
// (mapped by the caller onto the engine's cancellation plumbing) and the
// controller's shutdown.
type Admission struct {
	slots   chan struct{} // tokens; len(slots) = currently free
	maxWait int

	mu      sync.Mutex
	waiting int

	closed    chan struct{}
	closeOnce sync.Once

	// Cumulative counters for /metrics.
	admitted atomic.Uint64
	rejected atomic.Uint64
	queued   atomic.Uint64
}

// NewAdmission creates a controller with `slots` concurrent run slots and a
// wait queue of `queue` requests. Non-positive slots mean 1; a negative
// queue means 0 (no waiting: a request either runs now or is shed).
func NewAdmission(slots, queue int) *Admission {
	if slots <= 0 {
		slots = 1
	}
	if queue < 0 {
		queue = 0
	}
	a := &Admission{
		slots:   make(chan struct{}, slots),
		maxWait: queue,
		closed:  make(chan struct{}),
	}
	for i := 0; i < slots; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// Acquire takes a run slot, waiting in the bounded queue if none is free.
// It returns a release function (idempotent, must be called when the run
// finishes) or: ErrBusy when the queue is full, ErrDraining after Close,
// or ctx.Err() when the caller's deadline fires while queued.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	select {
	case <-a.closed:
		return nil, ErrDraining
	default:
	}
	// Fast path: a free slot means no queueing at all.
	select {
	case <-a.slots:
		a.admitted.Add(1)
		return a.releaser(), nil
	default:
	}
	a.mu.Lock()
	if a.waiting >= a.maxWait {
		a.mu.Unlock()
		a.rejected.Add(1)
		return nil, ErrBusy
	}
	a.waiting++
	a.mu.Unlock()
	a.queued.Add(1)
	defer func() {
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
	}()
	select {
	case <-a.slots:
		a.admitted.Add(1)
		return a.releaser(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-a.closed:
		return nil, ErrDraining
	}
}

// releaser returns the slot back exactly once, however many times it is
// called.
func (a *Admission) releaser() func() {
	var once sync.Once
	return func() {
		once.Do(func() { a.slots <- struct{}{} })
	}
}

// Close starts the drain: every queued Acquire returns ErrDraining
// immediately and new requests are rejected. In-flight runs keep their
// slots until they release them (the server cancels their contexts
// separately).
func (a *Admission) Close() {
	a.closeOnce.Do(func() { close(a.closed) })
}

// InUse reports how many run slots are currently held.
func (a *Admission) InUse() int { return cap(a.slots) - len(a.slots) }

// Slots reports the configured slot count.
func (a *Admission) Slots() int { return cap(a.slots) }

// QueueDepth reports how many requests are waiting for a slot right now.
func (a *Admission) QueueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}

// Counters reports the cumulative admitted / rejected / queued totals.
func (a *Admission) Counters() (admitted, rejected, queued uint64) {
	return a.admitted.Load(), a.rejected.Load(), a.queued.Load()
}

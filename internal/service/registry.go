// Package service is the resident triangle query service: a registry of
// named, long-lived pdtl.Graph handles, an admission controller bounding
// concurrent engine runs, a memoizing result cache with per-graph
// single-flight, and an HTTP/JSON API over all of it (server.go). It turns
// the one-shot CLI workflow into a multi-tenant process that amortizes
// PDTL's cacheable preprocessing (orientation, in-degrees, load-balance
// plans — see handle.go) across every request. DESIGN.md §8 describes the
// architecture.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pdtl"
)

// ErrUnknownGraph is returned for requests naming a graph the registry does
// not hold (never registered, or evicted).
var ErrUnknownGraph = errors.New("service: unknown graph")

// ErrRegistryClosed is returned by registry operations after Close.
var ErrRegistryClosed = errors.New("service: registry is closed")

// maxCachedResults bounds the memoized results kept per graph entry. The
// option space users actually exercise is tiny (a few worker counts ×
// schedulers), so 256 is effectively "everything" while still bounding a
// key-sweeping client.
const maxCachedResults = 256

// Origin reports how a request was satisfied: by executing an engine run,
// by joining an identical in-flight run (single-flight), or from the
// memoized result cache.
type Origin string

const (
	OriginRun    Origin = "run"
	OriginShared Origin = "shared"
	OriginCache  Origin = "cache"
)

// Registry holds the service's named graph handles with an LRU bound on how
// many stay open. Each entry owns the per-graph result cache and
// single-flight table; re-registering a name replaces the entry wholesale,
// which is what invalidates every memoized result for the old store.
type Registry struct {
	mu      sync.Mutex
	maxOpen int
	closed  bool
	clock   uint64
	gen     uint64
	entries map[string]*Entry
}

// NewRegistry creates a registry keeping at most maxOpen graphs open
// (non-positive means unbounded). Past the bound, registering a new graph
// evicts the least recently used one.
func NewRegistry(maxOpen int) *Registry {
	return &Registry{maxOpen: maxOpen, entries: make(map[string]*Entry)}
}

// Entry is one registered graph: the long-lived handle plus the caches the
// service layers on top of it. A live entry additionally carries the
// mutable overlay; its memoized results are invalidated wholesale on every
// mutation batch (see Invalidate).
type Entry struct {
	name string
	base string
	gen  uint64
	g    *pdtl.Graph
	live *pdtl.LiveGraph // nil for immutable entries

	// lastUse is the registry clock at the entry's last lookup; guarded by
	// the Registry mutex.
	lastUse uint64

	mu      sync.Mutex
	cache   map[string]any
	order   []string // cache keys in insertion order, for bounded eviction
	flights map[string]*flight
	// mutGen counts mutation batches applied to a live entry. A run that
	// started under an older generation is never memoized: its result was
	// computed against a view that no longer answers for the graph.
	mutGen uint64
}

// Name reports the entry's registered name.
func (e *Entry) Name() string { return e.name }

// Base reports the store path the entry's handle was opened on.
func (e *Entry) Base() string { return e.base }

// Gen reports the entry's registration generation (bumped on every
// Register, so re-registrations are observable).
func (e *Entry) Gen() uint64 { return e.gen }

// Graph returns the entry's handle.
func (e *Entry) Graph() *pdtl.Graph { return e.g }

// Live returns the entry's mutable overlay, or nil for immutable entries.
func (e *Entry) Live() *pdtl.LiveGraph { return e.live }

// MutGen reports how many mutation batches have been applied to the entry.
func (e *Entry) MutGen() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mutGen
}

// Invalidate drops every memoized result and bumps the mutation generation,
// so runs already in flight (computed against the pre-mutation view) finish
// for their waiters but are not cached. Called after each applied batch.
func (e *Entry) Invalidate() {
	e.mu.Lock()
	e.mutGen++
	e.cache = make(map[string]any)
	e.order = nil
	e.mu.Unlock()
}

// close releases the entry's handle (and overlay, for live entries).
func (e *Entry) close() {
	if e.live != nil {
		e.live.Close() // closes the underlying handle too
		return
	}
	e.g.Close()
}

// CachedResults reports how many memoized results the entry holds.
func (e *Entry) CachedResults() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// Register opens the store at base and binds it to name, replacing (and
// closing) any previous handle under that name — the previous entry's
// memoized results die with it. Past the registry's LRU bound the least
// recently used other entry is evicted and closed.
func (r *Registry) Register(name, base string) (*Entry, error) {
	g, err := pdtl.Open(base)
	if err != nil {
		return nil, err
	}
	e, err := r.attach(name, base, g, nil)
	if err != nil {
		g.Close()
		return nil, err
	}
	return e, nil
}

// RegisterLive opens the store at base wrapped in a mutable delta overlay
// (pdtl.OpenLive) and binds it to name. The entry then accepts edge
// mutations; each applied batch invalidates its memoized results.
func (r *Registry) RegisterLive(ctx context.Context, name, base string, opt pdtl.LiveOptions) (*Entry, error) {
	lg, err := pdtl.OpenLive(ctx, base, opt)
	if err != nil {
		return nil, err
	}
	e, err := r.attach(name, base, lg.Handle(), lg)
	if err != nil {
		lg.Close()
		return nil, err
	}
	return e, nil
}

// Attach binds an already-open handle to name. The registry takes ownership
// of the handle (it is closed on eviction, replacement, and registry
// close).
func (r *Registry) Attach(name string, g *pdtl.Graph) (*Entry, error) {
	return r.attach(name, g.Base(), g, nil)
}

// AttachLive binds an already-open live graph to name; the registry takes
// ownership of the overlay and its handle.
func (r *Registry) AttachLive(name string, lg *pdtl.LiveGraph) (*Entry, error) {
	return r.attach(name, lg.Handle().Base(), lg.Handle(), lg)
}

func (r *Registry) attach(name, base string, g *pdtl.Graph, lg *pdtl.LiveGraph) (*Entry, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrRegistryClosed
	}
	r.gen++
	r.clock++
	e := &Entry{
		name:    name,
		base:    base,
		gen:     r.gen,
		g:       g,
		live:    lg,
		lastUse: r.clock,
		cache:   make(map[string]any),
		flights: make(map[string]*flight),
	}
	var closing []*Entry
	if old, ok := r.entries[name]; ok {
		closing = append(closing, old)
	}
	r.entries[name] = e
	for r.maxOpen > 0 && len(r.entries) > r.maxOpen {
		var lru *Entry
		for _, cand := range r.entries {
			if cand == e {
				continue
			}
			if lru == nil || cand.lastUse < lru.lastUse {
				lru = cand
			}
		}
		if lru == nil {
			break
		}
		delete(r.entries, lru.name)
		closing = append(closing, lru)
	}
	r.mu.Unlock()
	// Closing outside the lock: handle Close never blocks on in-flight
	// runs, but there is no reason to hold the registry over it either.
	for _, old := range closing {
		old.close()
	}
	return e, nil
}

// Get looks a graph up by name and touches its LRU recency.
func (r *Registry) Get(name string) (*Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrRegistryClosed
	}
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, name)
	}
	r.clock++
	e.lastUse = r.clock
	return e, nil
}

// Evict removes and closes the named graph. Runs already executing on the
// handle finish; runs that have not started yet fail with pdtl.ErrClosed.
func (r *Registry) Evict(name string) bool {
	r.mu.Lock()
	e, ok := r.entries[name]
	if ok {
		delete(r.entries, name)
	}
	r.mu.Unlock()
	if ok {
		e.close()
	}
	return ok
}

// Len reports how many graphs are registered.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Snapshot returns the current entries, most recently used first.
func (r *Registry) Snapshot() []*Entry {
	r.mu.Lock()
	entries := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].lastUse > entries[j-1].lastUse; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	return entries
}

// Close evicts and closes every entry and fails all later operations.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	entries := r.entries
	r.entries = make(map[string]*Entry)
	r.mu.Unlock()
	for _, e := range entries {
		e.close()
	}
}

// flight is one in-flight memoizable run that concurrent identical requests
// share. The run's context is derived from the server's base context and is
// cancelled when the last interested waiter abandons the flight, so a run
// nobody is waiting for anymore does not keep grinding the disk.
type flight struct {
	done    chan struct{}
	val     any
	err     error
	waiters atomic.Int32
	cancel  context.CancelFunc
}

// leave drops one waiter; the last one out cancels the run.
func (f *flight) leave() {
	if f.waiters.Add(-1) == 0 {
		f.cancel()
	}
}

// Do satisfies one memoizable request: result cache first, then join an
// identical in-flight run, else become the leader — acquire an admission
// slot (waiting in its bounded queue under runCtx) and execute run. The
// leader's run context descends from baseCtx (the server's lifetime, so
// shutdown cancels it) and is abandoned-waiter-cancelled; each waiter's own
// ctx bounds only its wait. Successful results are memoized under key until
// the entry is replaced, evicted, or (live entries) invalidated by a
// mutation batch.
func (e *Entry) Do(ctx, baseCtx context.Context, key string, adm *Admission, met *Metrics,
	run func(context.Context) (any, error)) (any, Origin, error) {
	for {
		e.mu.Lock()
		if val, ok := e.cache[key]; ok {
			e.mu.Unlock()
			met.CacheHits.Add(1)
			return val, OriginCache, nil
		}
		if f, ok := e.flights[key]; ok {
			if f.waiters.Add(1) == 1 {
				// Every previous waiter already abandoned this flight, so
				// its run is being cancelled — don't ride a dying run.
				// Wait for it to clear the table and retry fresh.
				f.leave()
				e.mu.Unlock()
				select {
				case <-f.done:
					continue
				case <-ctx.Done():
					return nil, OriginShared, ctx.Err()
				}
			}
			e.mu.Unlock()
			select {
			case <-f.done:
				if f.err != nil {
					return nil, OriginShared, translateRunErr(f.err, ctx, baseCtx)
				}
				met.RunsShared.Add(1)
				return f.val, OriginShared, nil
			case <-ctx.Done():
				f.leave()
				return nil, OriginShared, ctx.Err()
			}
		}
		met.CacheMisses.Add(1)
		// The flight remembers the mutation generation it started under; a
		// mutation landing mid-run bumps it, and the stale result is then
		// handed to this flight's waiters but never memoized.
		gen := e.mutGen
		runCtx, cancel := context.WithCancel(baseCtx)
		f := &flight{done: make(chan struct{}), cancel: cancel}
		f.waiters.Store(1)
		e.flights[key] = f
		e.mu.Unlock()

		// The leader executes synchronously, so its own disconnect is
		// propagated by the waiter accounting rather than a select: when
		// ctx fires and no joiner remains, the run is cancelled.
		stopWatch := context.AfterFunc(ctx, f.leave)

		admStart := time.Now()
		release, err := adm.Acquire(runCtx)
		if err == nil {
			met.QueueWait.ObserveDuration(time.Since(admStart))
		}
		if cerr := ctx.Err(); cerr != nil && err == nil {
			// The leader's own context is already dead (an expired
			// ?timeout=, or a client that disconnected while queued). The
			// AfterFunc above cancels the run too, but on a saturated
			// single-P runtime that goroutine may not be scheduled before a
			// short run finishes — don't start work nobody is waiting for.
			release()
			release, err = nil, cerr
		}
		if err == nil {
			met.RunsStarted.Add(1)
			f.val, f.err = run(runCtx)
			release()
			if f.err == nil {
				met.RunsCompleted.Add(1)
			} else {
				met.RunsFailed.Add(1)
			}
		} else {
			f.err = err
		}

		e.mu.Lock()
		delete(e.flights, key)
		if f.err == nil && e.mutGen == gen {
			if len(e.cache) >= maxCachedResults {
				oldest := e.order[0]
				e.order = e.order[1:]
				delete(e.cache, oldest)
			}
			e.cache[key] = f.val
			e.order = append(e.order, key)
		}
		e.mu.Unlock()
		close(f.done)
		stopWatch()
		// The flight is complete; release the run context's resources even
		// if no waiter ever abandoned it.
		cancel()

		if f.err == nil {
			return f.val, OriginRun, nil
		}
		return nil, OriginRun, translateRunErr(f.err, ctx, baseCtx)
	}
}

// translateRunErr maps a run cancelled by waiter abandonment or shutdown —
// which reports the bare context.Canceled — onto what this caller can act
// on: its own context error (the deadline that actually expired), or the
// server drain. Leader and joiner alike go through here, so a drained
// shared run is a 503 for everyone, not a client-cancel.
func translateRunErr(err error, ctx, baseCtx context.Context) error {
	if errors.Is(err, context.Canceled) {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if baseCtx.Err() != nil {
			return ErrDraining
		}
	}
	return err
}

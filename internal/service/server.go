package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"regexp"
	"runtime"
	"strconv"
	"sync"
	"time"

	"pdtl"
	"pdtl/internal/obs"
)

// Config parameterizes a Server.
type Config struct {
	// MaxGraphs is the registry's LRU bound on open graph handles;
	// non-positive selects 16.
	MaxGraphs int
	// RunSlots bounds concurrently executing engine runs; non-positive
	// selects the CPU count.
	RunSlots int
	// QueueDepth bounds the requests allowed to wait for a run slot;
	// negative means no waiting, zero selects 32.
	QueueDepth int
	// Defaults seeds every run's options; individual requests override
	// knobs per query parameter (workers, mem, sched, scan, kernel, ...).
	Defaults pdtl.Options
	// ClusterAddrs, when non-empty, are the PDTL worker nodes
	// `?distributed=1` counts run against (via Graph.CountDistributed).
	ClusterAddrs []string
	// ClusterDefaults seeds distributed runs the same way Defaults seeds
	// local ones.
	ClusterDefaults pdtl.ClusterOptions
	// Live registers every graph as a mutable delta overlay (pdtl.OpenLive),
	// enabling POST …/edges and …/compact. Individual registrations can
	// also opt in with {"live": true}.
	Live bool
	// LiveDefaults parameterizes live registrations (compaction triggers,
	// snapshot format, estimator reservoir).
	LiveDefaults pdtl.LiveOptions
	// Log, when non-nil, receives structured operational events: run
	// start/finish (with the memoization key as the run id and the phase
	// breakdown), cluster node failures, and compactions.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 16
	}
	if c.RunSlots <= 0 {
		c.RunSlots = runtime.NumCPU()
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 32
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	return c
}

// Server is the triangle query service: the registry, admission controller,
// result cache, and metrics behind one http.Handler. Create it with New,
// mount it on any net/http server, and stop it with Shutdown (which drains
// queued requests with 503s, cancels in-flight engine runs, and closes
// every graph handle).
type Server struct {
	cfg Config
	reg *Registry
	adm *Admission
	met *Metrics
	mux *http.ServeMux

	// obsReg renders /metrics; graphRuns and graphHits are its per-graph
	// labeled counter families (new names — the unlabeled totals above keep
	// their original series).
	obsReg    *obs.Registry
	graphRuns *obs.CounterVec
	graphHits *obs.CounterVec

	// baseCtx is every engine run's ancestor context; Shutdown cancels it.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// mu guards draining and orders enter() against Shutdown's wait: a
	// handler joins wg only while not draining, so the wait can never
	// race a request that slipped past a lock-free check.
	mu       sync.Mutex
	draining bool
	wg       sync.WaitGroup // in-flight request handlers
	started  time.Time
}

// New creates a Server. It is ready to serve immediately; graphs are
// registered via POST /v1/graphs or pre-loaded with RegisterGraph.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        NewRegistry(cfg.MaxGraphs),
		adm:        NewAdmission(cfg.RunSlots, cfg.QueueDepth),
		met:        &Metrics{},
		mux:        http.NewServeMux(),
		baseCtx:    ctx,
		baseCancel: cancel,
		started:    time.Now(),
	}
	s.initMetrics()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/graphs", s.handleRegister)
	s.mux.HandleFunc("GET /v1/graphs", s.handleList)
	s.mux.HandleFunc("GET /v1/graphs/{name}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/graphs/{name}", s.handleEvict)
	s.mux.HandleFunc("GET /v1/graphs/{name}/count", s.handleCount)
	s.mux.HandleFunc("GET /v1/graphs/{name}/triangles", s.handleTriangles)
	s.mux.HandleFunc("GET /v1/graphs/{name}/degrees", s.handleDegrees)
	s.mux.HandleFunc("POST /v1/graphs/{name}/estimate", s.handleEstimate)
	s.mux.HandleFunc("POST /v1/graphs/{name}/edges", s.handleMutate)
	s.mux.HandleFunc("POST /v1/graphs/{name}/compact", s.handleCompact)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Registry exposes the graph registry (for pre-loading and tests).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the counter set.
func (s *Server) Metrics() *Metrics { return s.met }

// RegisterGraph opens the store at base and registers it under name —
// the programmatic form of POST /v1/graphs, used by pdtl-serve's -graph
// flags. With Config.Live set the graph is registered as a mutable
// overlay.
func (s *Server) RegisterGraph(name, base string) error {
	_, err := s.registerEntry(name, base, s.cfg.Live)
	return err
}

func (s *Server) registerEntry(name, base string, live bool) (*Entry, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	var (
		e   *Entry
		err error
	)
	if live {
		e, err = s.reg.RegisterLive(s.baseCtx, name, base, s.cfg.LiveDefaults)
	} else {
		e, err = s.reg.Register(name, base)
	}
	if err == nil {
		s.met.Registered.Add(1)
	}
	return e, err
}

// Shutdown drains the service: queued requests fail with 503, in-flight
// engine runs (including streaming listings) are cancelled through the
// normal context plumbing, and once every handler has returned the graph
// handles are closed. ctx bounds the wait. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.adm.Close()
	s.baseCancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.reg.Close()
	return err
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"graphs":    s.reg.Len(),
		"uptime_ns": time.Since(s.started).Nanoseconds(),
	})
}

// initMetrics builds the obs registry /metrics renders from: the Metrics
// atomics bridged as counters, gauge closures sampled at scrape time, the
// build-info constant, and the per-graph labeled counter families.
// Registration order is render order, fixed for the process lifetime.
func (s *Server) initMetrics() {
	r := obs.NewRegistry()
	s.met.registerWith(r)

	r.GaugeFunc("pdtl_run_slots", "Admission slots configured.",
		func() float64 { return float64(s.adm.Slots()) })
	r.GaugeFunc("pdtl_run_slots_in_use", "Admission slots currently held by runs.",
		func() float64 { return float64(s.adm.InUse()) })
	r.GaugeFunc("pdtl_run_queue_depth", "Requests waiting for an admission slot.",
		func() float64 { return float64(s.adm.QueueDepth()) })
	r.GaugeFunc("pdtl_graphs_open", "Graphs currently registered.",
		func() float64 { return float64(s.reg.Len()) })
	r.GaugeFunc("pdtl_uptime_seconds", "Whole seconds since the server started.",
		func() float64 { return float64(int64(time.Since(s.started).Seconds())) })
	r.GaugeFunc("pdtl_draining", "1 while the server is shutting down, else 0.",
		func() float64 {
			if s.isDraining() {
				return 1
			}
			return 0
		})
	r.CounterFunc("pdtl_runs_admitted", "Requests granted an admission slot.",
		func() float64 { admitted, _, _ := s.adm.Counters(); return float64(admitted) })
	r.CounterFunc("pdtl_admission_shed", "Requests rejected because the admission queue was full.",
		func() float64 { _, rejected, _ := s.adm.Counters(); return float64(rejected) })
	r.CounterFunc("pdtl_admission_queued", "Requests that waited in the admission queue.",
		func() float64 { _, _, queued := s.adm.Counters(); return float64(queued) })
	// Live-overlay gauges, sampled across the registry at scrape time: how
	// many graphs are mutable, how much uncompacted delta they carry, and
	// how many compactions have folded delta back into snapshots.
	r.GaugeFunc("pdtl_live_graphs", "Graphs registered as mutable live overlays.",
		func() float64 { g, _, _ := s.liveGauges(); return float64(g) })
	r.GaugeFunc("pdtl_live_delta_edges", "Uncompacted delta edge updates across live graphs.",
		func() float64 { _, d, _ := s.liveGauges(); return float64(d) })
	r.GaugeFunc("pdtl_live_compactions", "Compactions folded into snapshots across live graphs.",
		func() float64 { _, _, c := s.liveGauges(); return float64(c) })
	r.ConstGauge("pdtl_build_info", "Build metadata; the value is always 1.",
		buildInfoLabels(), 1)
	s.graphRuns = r.CounterVec("pdtl_graph_runs_total",
		"Engine runs executed, by graph.", "graph")
	s.graphHits = r.CounterVec("pdtl_graph_cache_hits_total",
		"Result-cache hits, by graph.", "graph")
	s.obsReg = r
}

// liveGauges samples the live-overlay registry state for the scrape-time
// gauge closures.
func (s *Server) liveGauges() (graphs, deltaEdges, compactions int64) {
	for _, e := range s.reg.Snapshot() {
		lg := e.Live()
		if lg == nil {
			continue
		}
		st := lg.Stats()
		graphs++
		deltaEdges += int64(st.DeltaEdges)
		compactions += int64(st.Compactions)
	}
	return graphs, deltaEdges, compactions
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obsReg.WriteText(w)
}

// noteOrigin bumps the per-graph labeled counters for a single-flight
// outcome. Shared joins count as neither: they neither ran nor hit the
// cache.
func (s *Server) noteOrigin(e *Entry, origin Origin) {
	switch origin {
	case OriginRun:
		s.graphRuns.With(e.Name()).Add(1)
	case OriginCache:
		s.graphHits.With(e.Name()).Add(1)
	}
}

// acquireSlot is adm.Acquire with the wait time observed into the
// queue-wait histogram (the single-flight run path times its own Acquire
// inside Entry.Do).
func (s *Server) acquireSlot(ctx context.Context) (func(), error) {
	start := time.Now()
	release, err := s.adm.Acquire(ctx)
	if err == nil {
		s.met.QueueWait.ObserveDuration(time.Since(start))
	}
	return release, err
}

// registerRequest is the POST /v1/graphs body.
type registerRequest struct {
	// Name is the handle clients address the graph by.
	Name string `json:"name"`
	// Base is the on-disk store path (as produced by pdtl-gen / WriteGraph).
	Base string `json:"base"`
	// Live registers the graph as a mutable delta overlay (implied when the
	// server itself runs with -live).
	Live bool `json:"live"`
}

var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

func validateName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("service: invalid graph name %q (want [A-Za-z0-9][A-Za-z0-9._-]{0,127})", name)
	}
	return nil
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w) {
		return
	}
	defer s.wg.Done()
	var req registerRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad register body: %w", err))
		return
	}
	if req.Base == "" {
		s.writeError(w, http.StatusBadRequest, errors.New("service: register needs a store base path"))
		return
	}
	e, err := s.registerEntry(req.Name, req.Base, req.Live || s.cfg.Live)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, graphStatus(e))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w) {
		return
	}
	defer s.wg.Done()
	entries := s.reg.Snapshot()
	list := make([]map[string]any, len(entries))
	for i, e := range entries {
		list[i] = graphStatus(e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(list), "graphs": list})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w) {
		return
	}
	defer s.wg.Done()
	e, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, graphStatus(e))
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w) {
		return
	}
	defer s.wg.Done()
	name := r.PathValue("name")
	if !s.reg.Evict(name) {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownGraph, name))
		return
	}
	s.met.Evicted.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"evicted": name})
}

// countResponse is the GET /v1/graphs/{name}/count reply (local and
// distributed).
type countResponse struct {
	Graph     string `json:"graph"`
	Key       string `json:"key"`
	Origin    Origin `json:"origin"`
	Triangles uint64 `json:"triangles"`
	// EngineRuns is the handle's lifetime engine-run counter — the
	// single-flight and cache assertions read it straight off the reply.
	EngineRuns      uint64 `json:"engine_runs"`
	WallNS          int64  `json:"wall_ns,omitempty"`
	OrientNS        int64  `json:"orient_ns,omitempty"`
	SourceBytesRead int64  `json:"source_bytes_read"`
	Workers         int    `json:"workers,omitempty"`
	Distributed     bool   `json:"distributed,omitempty"`
	Nodes           int    `json:"nodes,omitempty"`
	NetworkBytes    int64  `json:"network_bytes,omitempty"`
	// Failures surfaces the cluster fault-tolerance layer's per-run
	// failure log: worker failures the run detected and recovered from.
	// The count is exact regardless — a non-empty list only means the run
	// completed degraded (DESIGN.md §9).
	Failures []nodeFailureJSON `json:"failures,omitempty"`
	// Live marks counts served off a mutable overlay; MutGen is the
	// mutation generation the reply reflects (callers can correlate it with
	// their own POST …/edges responses).
	Live   bool   `json:"live,omitempty"`
	MutGen uint64 `json:"mut_gen,omitempty"`
	// Trace is the run's phase trace in Chrome trace_event form, present
	// only when the request asked ?trace=1 AND this request actually
	// executed the run (origin=run) — cache hits and shared joins have no
	// trace of their own to report.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// nodeFailureJSON is pdtl.NodeFailure shaped for the HTTP API.
type nodeFailureJSON struct {
	Node    string `json:"node,omitempty"`
	Addr    string `json:"addr"`
	Chunk   int    `json:"chunk"`
	Retries int    `json:"retries"`
	Error   string `json:"error"`
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w) {
		return
	}
	defer s.wg.Done()
	e, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	q := r.URL.Query()
	ctx, cleanup, err := s.requestCtx(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cleanup()

	if boolParam(q, "distributed") {
		if e.Live() != nil {
			s.writeError(w, http.StatusBadRequest,
				errors.New("service: distributed counts are not supported on live graphs (compact first)"))
			return
		}
		s.countDistributed(ctx, w, e, q)
		return
	}
	opt, err := s.parseOptions(q)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := opt.Key()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var tr *obs.Trace
	if boolParam(q, "trace") {
		tr = obs.NewTrace(0)
	}
	val, origin, err := e.Do(ctx, s.baseCtx, "count|"+key, s.adm, s.met,
		func(runCtx context.Context) (any, error) {
			if tr != nil {
				runCtx = obs.ContextWithCursor(runCtx, obs.Cursor{T: tr, Span: obs.NoSpan, Worker: -1})
			}
			if s.cfg.Log != nil {
				s.cfg.Log.Info("run started", "graph", e.Name(), "key", key)
			}
			if lg := e.Live(); lg != nil {
				// Exact count over the current merged view; the memoized
				// result stays valid until the next mutation batch
				// invalidates the entry.
				return lg.Count(runCtx, opt)
			}
			return e.Graph().Count(runCtx, opt)
		})
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	res := val.(*pdtl.Result)
	s.noteOrigin(e, origin)
	if origin == OriginRun {
		s.accountRun(res)
		if s.cfg.Log != nil {
			s.cfg.Log.Info("run finished", "graph", e.Name(), "key", key,
				"triangles", res.Triangles, "wall", res.TotalTime,
				"orient", res.OrientTime, "plan", res.PlanTime, "calc", res.CalcTime)
		}
	}
	resp := countResponse{
		Graph:           e.Name(),
		Key:             key,
		Origin:          origin,
		Triangles:       res.Triangles,
		EngineRuns:      e.Graph().Runs(),
		WallNS:          res.TotalTime.Nanoseconds(),
		OrientNS:        res.OrientTime.Nanoseconds(),
		SourceBytesRead: res.SourceBytesRead,
		Workers:         len(res.Workers),
	}
	if e.Live() != nil {
		resp.Live = true
		resp.MutGen = e.MutGen()
	}
	if origin == OriginRun {
		resp.Trace = traceJSON(tr)
	}
	writeJSON(w, http.StatusOK, resp)
}

// traceJSON renders a trace for embedding in a JSON reply; nil in, nil
// out.
func traceJSON(tr *obs.Trace) json.RawMessage {
	if tr == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		return nil
	}
	return json.RawMessage(bytes.TrimSpace(buf.Bytes()))
}

// countDistributed satisfies ?distributed=1 via the cluster protocol
// against the configured worker nodes, memoized like local counts.
func (s *Server) countDistributed(ctx context.Context, w http.ResponseWriter, e *Entry, q url.Values) {
	if len(s.cfg.ClusterAddrs) == 0 {
		s.writeError(w, http.StatusBadRequest,
			errors.New("service: no cluster worker nodes configured (pdtl-serve -cluster)"))
		return
	}
	opt, err := s.parseClusterOptions(q)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := opt.Key(s.cfg.ClusterAddrs)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var tr *obs.Trace
	if boolParam(q, "trace") {
		tr = obs.NewTrace(0)
	}
	val, origin, err := e.Do(ctx, s.baseCtx, "cluster|"+key, s.adm, s.met,
		func(runCtx context.Context) (any, error) {
			if tr != nil {
				runCtx = obs.ContextWithCursor(runCtx, obs.Cursor{T: tr, Span: obs.NoSpan, Worker: -1})
			}
			if s.cfg.Log != nil {
				s.cfg.Log.Info("run started", "graph", e.Name(), "key", key, "distributed", true)
			}
			return e.Graph().CountDistributed(runCtx, s.cfg.ClusterAddrs, opt)
		})
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	res := val.(*pdtl.ClusterResult)
	s.noteOrigin(e, origin)
	if origin == OriginRun {
		var src int64
		for _, n := range res.Nodes {
			src += n.SourceBytesRead
		}
		s.met.SourceBytesRead.Add(src)
		s.met.ClusterNodeFailures.Add(uint64(len(res.Failures)))
		s.met.RunDuration.ObserveDuration(res.TotalTime)
		if s.cfg.Log != nil {
			// Surface degradation per failed worker — the run recovered, but
			// the operator should know which node is being carried.
			for _, f := range res.Failures {
				s.cfg.Log.Warn("cluster node failure", "graph", e.Name(),
					"node", f.Node, "addr", f.Addr, "chunk", f.Chunk,
					"retries", f.Retries, "err", f.Err)
			}
			s.cfg.Log.Info("run finished", "graph", e.Name(), "key", key,
				"distributed", true, "triangles", res.Triangles,
				"wall", res.TotalTime, "nodes", len(res.Nodes),
				"failures", len(res.Failures))
		}
	}
	var failures []nodeFailureJSON
	for _, f := range res.Failures {
		failures = append(failures, nodeFailureJSON{
			Node: f.Node, Addr: f.Addr, Chunk: f.Chunk, Retries: f.Retries, Error: f.Err,
		})
	}
	resp := countResponse{
		Graph:        e.Name(),
		Key:          key,
		Origin:       origin,
		Triangles:    res.Triangles,
		EngineRuns:   e.Graph().Runs(),
		WallNS:       res.TotalTime.Nanoseconds(),
		OrientNS:     res.OrientTime.Nanoseconds(),
		Distributed:  true,
		Nodes:        len(res.Nodes),
		NetworkBytes: res.NetworkBytes,
		Failures:     failures,
	}
	if origin == OriginRun {
		resp.Trace = traceJSON(tr)
	}
	writeJSON(w, http.StatusOK, resp)
}

// streamFlushEvery is how many NDJSON lines are written between explicit
// flushes — frequent enough that a slow consumer sees steady progress,
// rare enough that flushing is not the bottleneck.
const streamFlushEvery = 512

func (s *Server) handleTriangles(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w) {
		return
	}
	defer s.wg.Done()
	e, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	if e.Live() != nil {
		s.writeError(w, http.StatusBadRequest,
			errors.New("service: triangle listing is not supported on live graphs (compact first)"))
		return
	}
	q := r.URL.Query()
	opt, err := s.parseOptions(q)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var limit uint64
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.ParseUint(v, 10, 64); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad limit: %w", err))
			return
		}
	}
	ctx, cleanup, err := s.requestCtx(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cleanup()

	// Streams are admission-controlled like any other engine run, but never
	// memoized: their product is the listing itself.
	release, err := s.acquireSlot(ctx)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	defer release()
	s.met.RunsStarted.Add(1)
	s.met.StreamsStarted.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, 64<<10)
	flusher, _ := w.(http.Flusher)

	// The iterator streams straight off the engine: breaking (limit) or a
	// dead client (ctx cancelled by net/http) cancels the run, tearing the
	// runners down within one memory window.
	seq, errf := e.Graph().Triangles(ctx, opt)
	var sent uint64
	stopped := false
	for t := range seq {
		fmt.Fprintf(bw, "{\"u\":%d,\"v\":%d,\"w\":%d}\n", t[0], t[1], t[2])
		sent++
		if limit > 0 && sent >= limit {
			stopped = true
			break
		}
		if sent%streamFlushEvery == 0 {
			bw.Flush()
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	bw.Flush()
	if flusher != nil {
		flusher.Flush()
	}
	s.met.TrianglesSent.Add(sent)
	if err := errf(); err != nil {
		s.met.StreamsBroken.Add(1)
		s.met.RunsFailed.Add(1)
		// The 200 header is long gone, so a clean end-of-stream here would
		// be indistinguishable from a complete listing. Abort the
		// connection instead: the client sees a truncated chunked body,
		// not a plausible-but-short triangle set. (On a client disconnect
		// the connection is already dead and the abort is a no-op.)
		panic(http.ErrAbortHandler)
	}
	if stopped {
		s.met.StreamsBroken.Add(1)
		s.met.RunsFailed.Add(1)
		return
	}
	s.met.RunsCompleted.Add(1)
}

// degreesValue is the memoized product of one TriangleDegrees run.
type degreesValue struct {
	counts []uint64
	res    *pdtl.Result
}

// vertexDegree is one row of the degrees reply.
type vertexDegree struct {
	Vertex    uint32 `json:"vertex"`
	Triangles uint64 `json:"triangles"`
}

func (s *Server) handleDegrees(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w) {
		return
	}
	defer s.wg.Done()
	e, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	if e.Live() != nil {
		s.writeError(w, http.StatusBadRequest,
			errors.New("service: triangle degrees are not supported on live graphs (compact first)"))
		return
	}
	q := r.URL.Query()
	opt, err := s.parseOptions(q)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	top := 50
	if v := q.Get("top"); v != "" {
		if top, err = strconv.Atoi(v); err != nil || top < 1 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad top %q", v))
			return
		}
	}
	key, err := opt.Key()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cleanup, err := s.requestCtx(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cleanup()
	val, origin, err := e.Do(ctx, s.baseCtx, "degrees|"+key, s.adm, s.met,
		func(runCtx context.Context) (any, error) {
			counts, res, err := e.Graph().TriangleDegrees(runCtx, opt)
			if err != nil {
				return nil, err
			}
			return degreesValue{counts: counts, res: res}, nil
		})
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	dv := val.(degreesValue)
	s.noteOrigin(e, origin)
	if origin == OriginRun {
		s.accountRun(dv.res)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"graph":     e.Name(),
		"origin":    origin,
		"triangles": dv.res.Triangles,
		"vertices":  len(dv.counts),
		"top":       topDegrees(dv.counts, top),
	})
}

// topDegrees extracts the k vertices with the most incident triangles,
// descending (ties by vertex id, so the reply is deterministic).
func topDegrees(counts []uint64, k int) []vertexDegree {
	if k > len(counts) {
		k = len(counts)
	}
	top := make([]vertexDegree, 0, k)
	for v, c := range counts {
		if c == 0 {
			continue
		}
		if len(top) < k {
			top = append(top, vertexDegree{Vertex: uint32(v), Triangles: c})
			for i := len(top) - 1; i > 0 && top[i].Triangles > top[i-1].Triangles; i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
			continue
		}
		if c <= top[k-1].Triangles {
			continue
		}
		top[k-1] = vertexDegree{Vertex: uint32(v), Triangles: c}
		for i := k - 1; i > 0 && top[i].Triangles > top[i-1].Triangles; i-- {
			top[i], top[i-1] = top[i-1], top[i]
		}
	}
	return top
}

// estimateRequest is the POST /v1/graphs/{name}/estimate body.
type estimateRequest struct {
	// Method is "doulion" (edge sparsification; default) or "wedges"
	// (uniform wedge sampling).
	Method string `json:"method"`
	// P is Doulion's edge survival probability in (0, 1]; default 0.1.
	P float64 `json:"p"`
	// Samples is the wedge-sampling budget; default 100000.
	Samples int `json:"samples"`
	// Seed makes the estimate reproducible (and memoizable); default 1.
	Seed int64 `json:"seed"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w) {
		return
	}
	defer s.wg.Done()
	e, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	if lg := e.Live(); lg != nil {
		// Live graphs maintain a streaming estimate (TRIÈST-FD) updated on
		// every mutation batch — it is already current, costs nothing to
		// read, and the batch estimators below would read the stale base
		// store instead of the merged view.
		var req estimateRequest
		if r.ContentLength != 0 {
			if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
				s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad estimate body: %w", err))
				return
			}
		}
		if req.Method != "" && req.Method != "streaming" {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("service: live graphs only support the streaming estimate (got method %q)", req.Method))
			return
		}
		est, exact := lg.Estimate()
		st := lg.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"graph":         e.Name(),
			"origin":        "live",
			"method":        "streaming",
			"estimate":      est,
			"exact":         exact,
			"sampled_edges": st.SampledEdges,
			"mut_gen":       e.MutGen(),
		})
		return
	}
	req := estimateRequest{Method: "doulion", P: 0.1, Samples: 100000, Seed: 1}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad estimate body: %w", err))
			return
		}
	}
	if req.Method == "" {
		req.Method = "doulion"
	}
	if req.Method != "doulion" && req.Method != "wedges" {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: unknown estimate method %q", req.Method))
		return
	}
	if req.Method == "doulion" && (req.P <= 0 || req.P > 1) {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: doulion p %v outside (0, 1]", req.P))
		return
	}
	if req.Method == "wedges" && req.Samples < 1 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: wedge samples %d < 1", req.Samples))
		return
	}
	ctx, cleanup, err := s.requestCtx(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cleanup()
	// Estimates are deterministic given (method, p, samples, seed), so they
	// memoize and single-flight exactly like exact counts.
	key := fmt.Sprintf("estimate|%s p%v n%d s%d", req.Method, req.P, req.Samples, req.Seed)
	val, origin, err := e.Do(ctx, s.baseCtx, key, s.adm, s.met,
		func(runCtx context.Context) (any, error) {
			if err := runCtx.Err(); err != nil {
				return nil, err
			}
			if req.Method == "wedges" {
				return e.Graph().EstimateWedges(req.Samples, req.Seed)
			}
			return e.Graph().EstimateDoulion(req.P, req.Seed)
		})
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"graph":    e.Name(),
		"origin":   origin,
		"method":   req.Method,
		"estimate": val.(float64),
	})
}

// mutateRequest is the POST /v1/graphs/{name}/edges body — the same shape
// pdtl-gen stream emits, one batch per trace line. Inserts are applied
// before deletes within a batch.
type mutateRequest struct {
	Insert [][2]uint32 `json:"insert"`
	Delete [][2]uint32 `json:"delete"`
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w) {
		return
	}
	defer s.wg.Done()
	e, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	lg := e.Live()
	if lg == nil {
		s.writeError(w, http.StatusBadRequest, errNotLive(e))
		return
	}
	var req mutateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad edges body: %w", err))
		return
	}
	if len(req.Insert)+len(req.Delete) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("service: empty mutation batch"))
		return
	}
	ctx, cleanup, err := s.requestCtx(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cleanup()
	// Mutations are admission-controlled like engine runs: a batch rebuilds
	// delta layers, feeds the estimator, and may kick off a compaction —
	// enough work that unbounded concurrent batches could starve queries.
	release, err := s.acquireSlot(ctx)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	updates := make([]pdtl.LiveUpdate, 0, len(req.Insert)+len(req.Delete))
	for _, p := range req.Insert {
		updates = append(updates, pdtl.LiveUpdate{U: p[0], V: p[1]})
	}
	for _, p := range req.Delete {
		updates = append(updates, pdtl.LiveUpdate{U: p[0], V: p[1], Del: true})
	}
	err = lg.Apply(updates)
	release()
	if err != nil {
		// ApplyBatch only fails on invalid updates (self-loop, duplicate
		// insert, absent delete), and rejects the batch atomically.
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// The applied batch changed the answer to every memoized query; drop
	// them all and bump the generation so in-flight runs do not re-cache
	// stale results.
	e.Invalidate()
	s.met.MutationBatches.Add(1)
	s.met.EdgesApplied.Add(uint64(len(updates)))
	s.met.MutationBatchEdges.Observe(float64(len(updates)))
	writeJSON(w, http.StatusOK, map[string]any{
		"graph":    e.Name(),
		"inserted": len(req.Insert),
		"deleted":  len(req.Delete),
		"mut_gen":  e.MutGen(),
		"stats":    liveStatsJSON(lg.Stats()),
	})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if !s.enter(w) {
		return
	}
	defer s.wg.Done()
	e, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	lg := e.Live()
	if lg == nil {
		s.writeError(w, http.StatusBadRequest, errNotLive(e))
		return
	}
	ctx, cleanup, err := s.requestCtx(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cleanup()
	// Compaction rebuilds the store through the external-sort pipeline — a
	// full engine-run's worth of work, so it takes an admission slot.
	release, err := s.acquireSlot(ctx)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	compactStart := time.Now()
	err = lg.Compact(ctx)
	release()
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.met.CompactionDuration.ObserveDuration(time.Since(compactStart))
	if s.cfg.Log != nil {
		s.cfg.Log.Info("compaction finished", "graph", e.Name(),
			"wall", time.Since(compactStart), "gen", lg.Stats().Gen)
	}
	// Compaction preserves the graph, so memoized results stay valid.
	writeJSON(w, http.StatusOK, map[string]any{
		"graph": e.Name(),
		"stats": liveStatsJSON(lg.Stats()),
	})
}

func errNotLive(e *Entry) error {
	return fmt.Errorf("service: graph %q is not live (register it with \"live\": true or run the server with -live)", e.Name())
}

// liveStatsJSON shapes pdtl.LiveStats for the JSON API.
func liveStatsJSON(st pdtl.LiveStats) map[string]any {
	return map[string]any{
		"gen":            st.Gen,
		"num_vertices":   st.NumVertices,
		"num_edges":      st.NumEdges,
		"active_edges":   st.ActiveEdges,
		"frozen_edges":   st.FrozenEdges,
		"delta_edges":    st.DeltaEdges,
		"batches":        st.Batches,
		"edges_applied":  st.EdgesApplied,
		"compactions":    st.Compactions,
		"compacting":     st.Compacting,
		"estimate":       st.Estimate,
		"estimate_exact": st.EstimateExact,
		"sampled_edges":  st.SampledEdges,
	}
}

// --- request plumbing ---

// requestCtx derives the run context for one request: the client's own
// context (cancelled by net/http on disconnect), joined with the server's
// base context (cancelled by Shutdown), bounded by an optional ?timeout=
// duration — the per-request deadline mapped straight onto the engine's
// cancellation plumbing.
func (s *Server) requestCtx(r *http.Request) (context.Context, func(), error) {
	var timeout time.Duration
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, nil, fmt.Errorf("service: bad timeout %q (want a positive Go duration)", v)
		}
		timeout = d
	}
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.baseCtx, cancel)
	cancelTimeout := func() {}
	if timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, timeout)
	}
	cleanup := func() {
		stop()
		cancelTimeout()
		cancel()
	}
	return ctx, cleanup, nil
}

// parseOptions builds a run's Options from the server defaults plus the
// request's query parameters.
func (s *Server) parseOptions(q url.Values) (pdtl.Options, error) {
	opt := s.cfg.Defaults
	err := applyRunParams(q, &opt.Workers, &opt.MemEdges, &opt.Chunks,
		&opt.Sched, &opt.ScanSource, &opt.Kernel, &opt.StoreFormat, &opt.NaiveBalance)
	return opt, err
}

// parseClusterOptions is parseOptions for distributed runs.
func (s *Server) parseClusterOptions(q url.Values) (pdtl.ClusterOptions, error) {
	opt := s.cfg.ClusterDefaults
	err := applyRunParams(q, &opt.Workers, &opt.MemEdges, &opt.Chunks,
		&opt.Sched, &opt.ScanSource, &opt.Kernel, &opt.StoreFormat, &opt.NaiveBalance)
	// Listing over the wire is a batch concern; the service only counts.
	opt.List = false
	opt.ListPath = ""
	return opt, err
}

// applyRunParams overlays the query knobs every run shape shares onto an
// options struct — Options and ClusterOptions spell these fields
// identically, so both parsers defer here and cannot drift.
func applyRunParams(q url.Values, workers, mem, chunks *int, sched, scanSource, kernel, store *string, naive *bool) error {
	var err error
	if *workers, err = intParam(q, "workers", *workers, 1024); err != nil {
		return err
	}
	if *mem, err = intParam(q, "mem", *mem, 1<<30); err != nil {
		return err
	}
	if *chunks, err = intParam(q, "chunks", *chunks, 1024); err != nil {
		return err
	}
	if v := q.Get("sched"); v != "" {
		*sched = v
	}
	if v := q.Get("scan"); v != "" {
		*scanSource = v
	}
	if v := q.Get("kernel"); v != "" {
		*kernel = v
	}
	if v := q.Get("store"); v != "" {
		*store = v
	}
	if q.Has("naive") {
		*naive = boolParam(q, "naive")
	}
	return nil
}

func intParam(q url.Values, name string, def, max int) (int, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("service: bad %s %q: %w", name, v, err)
	}
	if n < 0 || n > max {
		return 0, fmt.Errorf("service: %s %d outside [0, %d]", name, n, max)
	}
	return n, nil
}

func boolParam(q url.Values, name string) bool {
	switch q.Get(name) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

// accountRun folds one executed run's I/O into the cumulative metrics; a
// cache hit adds exactly zero here, which is what the "repeat request does
// no source I/O" assertion measures.
func (s *Server) accountRun(res *pdtl.Result) {
	s.met.RunDuration.ObserveDuration(res.TotalTime)
	s.met.SourceBytesRead.Add(res.SourceBytesRead)
	var worker int64
	for _, ws := range res.Workers {
		worker += ws.BytesRead
	}
	s.met.WorkerBytesRead.Add(worker)
}

// enter admits one API request into the in-flight group, or writes the
// drain 503. A handler that entered must `defer s.wg.Done()`. The
// check-and-Add is one critical section against Shutdown setting draining,
// so Shutdown's wg.Wait covers every request that got in.
func (s *Server) enter(w http.ResponseWriter) bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return false
	}
	s.wg.Add(1)
	s.mu.Unlock()
	return true
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// graphStatus renders one registry entry for the JSON API.
func graphStatus(e *Entry) map[string]any {
	g := e.Graph()
	st := map[string]any{
		"name":           e.Name(),
		"base":           e.Base(),
		"gen":            e.Gen(),
		"engine_runs":    g.Runs(),
		"cached_results": e.CachedResults(),
		"oriented_base":  g.OrientedBase(),
		"info":           g.Info(),
	}
	if lg := e.Live(); lg != nil {
		st["live"] = true
		st["mut_gen"] = e.MutGen()
		st["live_stats"] = liveStatsJSON(lg.Stats())
	}
	return st
}

// statusFor maps service and engine errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownGraph):
		return http.StatusNotFound
	case errors.Is(err, ErrBusy), errors.Is(err, ErrDraining), errors.Is(err, ErrRegistryClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log's benefit only.
		return 499
	case errors.Is(err, pdtl.ErrClosed):
		// Evicted or replaced between lookup and run.
		return http.StatusGone
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]any{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

package service

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"pdtl"
)

// scrapeMetrics fetches /metrics and returns the integer-valued samples as
// a name → value map. Comment lines (# HELP / # TYPE) and float-valued
// samples (histogram sums) are skipped; labeled series keep their label
// set in the key.
func scrapeMetrics(t *testing.T, client *http.Client, url string) map[string]int64 {
	t.Helper()
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	vals := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			continue
		}
		vals[name] = n
	}
	return vals
}

// TestServerLiveMutateInvalidatesCache drives the live HTTP surface end to
// end: register a mutable graph, count (memoized), mutate (which must
// invalidate the memoized result), recount, estimate, compact, and check
// the gauges — while a plain graph on the same server keeps rejecting the
// mutation endpoints.
func TestServerLiveMutateInvalidatesCache(t *testing.T) {
	base := genStore(t, 7, 3)
	svc := New(Config{RunSlots: 2, QueueDepth: 8})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	client := ts.Client()

	postJSON(t, client, ts.URL+"/v1/graphs",
		registerRequest{Name: "lv", Base: base, Live: true}, http.StatusCreated)
	postJSON(t, client, ts.URL+"/v1/graphs",
		registerRequest{Name: "ro", Base: base}, http.StatusCreated)

	countURL := ts.URL + "/v1/graphs/lv/count?workers=2&mem=4096"
	c1 := getJSON(t, client, countURL, 200)
	if c1["origin"] != "run" || c1["live"] != true {
		t.Fatalf("cold live count = %v", c1)
	}
	t0 := c1["triangles"].(float64)
	if c2 := getJSON(t, client, countURL, 200); c2["origin"] != "cache" {
		t.Fatalf("repeat live count origin = %v, want cache", c2["origin"])
	}

	// The streaming estimate agrees with the exact count (the default
	// reservoir dwarfs this store, so it is in the exact regime).
	est := postJSON(t, client, ts.URL+"/v1/graphs/lv/estimate", nil, 200)
	if est["method"] != "streaming" || est["exact"] != true || est["estimate"].(float64) != t0 {
		t.Fatalf("live estimate = %v, want exact %v", est, t0)
	}

	// A triangle among three brand-new vertices: exactly +1 triangle, no
	// interaction with the generated store.
	mut := postJSON(t, client, ts.URL+"/v1/graphs/lv/edges", mutateRequest{
		Insert: [][2]uint32{{300, 301}, {301, 302}, {300, 302}},
	}, 200)
	if mut["inserted"].(float64) != 3 || mut["mut_gen"].(float64) != 1 {
		t.Fatalf("mutate reply = %v", mut)
	}

	// The memoized count died with the mutation: same URL runs again and
	// sees the new triangle.
	c3 := getJSON(t, client, countURL, 200)
	if c3["origin"] != "run" {
		t.Fatalf("post-mutation count origin = %v, want run", c3["origin"])
	}
	if c3["triangles"].(float64) != t0+1 {
		t.Fatalf("post-mutation triangles = %v, want %v", c3["triangles"], t0+1)
	}
	if c4 := getJSON(t, client, countURL, 200); c4["origin"] != "cache" {
		t.Fatalf("re-repeat origin = %v, want cache", c4["origin"])
	}
	est = postJSON(t, client, ts.URL+"/v1/graphs/lv/estimate", nil, 200)
	if est["estimate"].(float64) != t0+1 {
		t.Fatalf("post-mutation estimate = %v, want %v", est["estimate"], t0+1)
	}

	// Deleting one of the new edges takes the triangle away again.
	postJSON(t, client, ts.URL+"/v1/graphs/lv/edges", mutateRequest{
		Delete: [][2]uint32{{301, 302}},
	}, 200)
	c5 := getJSON(t, client, countURL, 200)
	if c5["origin"] != "run" || c5["triangles"].(float64) != t0 {
		t.Fatalf("post-delete count = %v, want run with %v", c5, t0)
	}

	// Invalid batches are rejected without touching the cache or the
	// generation.
	postJSON(t, client, ts.URL+"/v1/graphs/lv/edges", mutateRequest{
		Insert: [][2]uint32{{7, 7}},
	}, http.StatusBadRequest)
	postJSON(t, client, ts.URL+"/v1/graphs/lv/edges", mutateRequest{}, http.StatusBadRequest)
	if c6 := getJSON(t, client, countURL, 200); c6["origin"] != "cache" {
		t.Fatalf("count after rejected batch origin = %v, want cache", c6["origin"])
	}

	// Listing endpoints and distributed counts refuse live graphs; the
	// mutation endpoints refuse plain ones.
	getJSON(t, client, ts.URL+"/v1/graphs/lv/triangles", http.StatusBadRequest)
	getJSON(t, client, ts.URL+"/v1/graphs/lv/degrees", http.StatusBadRequest)
	getJSON(t, client, ts.URL+"/v1/graphs/lv/count?distributed=1", http.StatusBadRequest)
	postJSON(t, client, ts.URL+"/v1/graphs/ro/edges", mutateRequest{
		Insert: [][2]uint32{{300, 301}},
	}, http.StatusBadRequest)
	postJSON(t, client, ts.URL+"/v1/graphs/ro/compact", nil, http.StatusBadRequest)

	// Compaction folds the delta into a gen-1 snapshot; results are
	// preserved, so the memoized count survives.
	comp := postJSON(t, client, ts.URL+"/v1/graphs/lv/compact", nil, 200)
	st := comp["stats"].(map[string]any)
	if st["gen"].(float64) != 1 || st["delta_edges"].(float64) != 0 {
		t.Fatalf("post-compact stats = %v", st)
	}
	if c7 := getJSON(t, client, countURL, 200); c7["origin"] != "cache" || c7["triangles"].(float64) != t0 {
		t.Fatalf("post-compact count = %v", c7)
	}

	// Status carries the live block; the gauges see one live graph, the
	// applied batches, and the compaction.
	status := getJSON(t, client, ts.URL+"/v1/graphs/lv", 200)
	if status["live"] != true || status["mut_gen"].(float64) != 2 {
		t.Fatalf("live status = %v", status)
	}
	m := scrapeMetrics(t, client, ts.URL)
	if m["pdtl_live_graphs"] != 1 {
		t.Fatalf("pdtl_live_graphs = %d, want 1", m["pdtl_live_graphs"])
	}
	if m["pdtl_mutation_batches"] != 2 || m["pdtl_edges_applied"] != 4 {
		t.Fatalf("mutation counters = %d batches / %d edges, want 2/4",
			m["pdtl_mutation_batches"], m["pdtl_edges_applied"])
	}
	if m["pdtl_live_delta_edges"] != 0 || m["pdtl_live_compactions"] != 1 {
		t.Fatalf("live gauges = %d delta / %d compactions, want 0/1",
			m["pdtl_live_delta_edges"], m["pdtl_live_compactions"])
	}
}

// TestEntryInvalidateDropsInFlightResult pins the generation guard: a run
// that is already executing when a mutation invalidates the entry still
// answers its own waiters, but its (stale) result must not be memoized.
func TestEntryInvalidateDropsInFlightResult(t *testing.T) {
	base := genStore(t, 7, 4)
	r := NewRegistry(4)
	defer r.Close()
	e, err := r.RegisterLive(context.Background(), "g", base, pdtl.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	adm := NewAdmission(2, 4)
	met := &Metrics{}

	started := make(chan struct{})
	proceed := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var val any
	go func() {
		defer wg.Done()
		val, _, err = e.Do(context.Background(), context.Background(), "k", adm, met,
			func(context.Context) (any, error) {
				close(started)
				<-proceed
				return "stale", nil
			})
	}()
	<-started
	e.Invalidate() // the mutation lands mid-run
	close(proceed)
	wg.Wait()
	if err != nil || val != "stale" {
		t.Fatalf("in-flight Do = %v, %v", val, err)
	}
	if n := e.CachedResults(); n != 0 {
		t.Fatalf("stale result was memoized (%d cached)", n)
	}
	// The next identical request runs fresh rather than hitting a cache.
	_, origin, err := e.Do(context.Background(), context.Background(), "k", adm, met,
		func(context.Context) (any, error) { return "fresh", nil })
	if err != nil || origin != OriginRun {
		t.Fatalf("post-invalidate Do origin = %v, %v, want run", origin, err)
	}
	if n := e.CachedResults(); n != 1 {
		t.Fatalf("fresh result not memoized (%d cached)", n)
	}
}

package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionSlotsAndQueue(t *testing.T) {
	a := NewAdmission(2, 1)
	ctx := context.Background()
	rel1, err := a.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InUse(); got != 2 {
		t.Fatalf("InUse = %d, want 2", got)
	}

	// Third acquire queues; fourth is shed immediately.
	got3 := make(chan error, 1)
	go func() {
		rel3, err := a.Acquire(ctx)
		if err == nil {
			defer rel3()
		}
		got3 <- err
	}()
	waitFor(t, func() bool { return a.QueueDepth() == 1 })
	if _, err := a.Acquire(ctx); !errors.Is(err, ErrBusy) {
		t.Fatalf("over-queue acquire err = %v, want ErrBusy", err)
	}

	rel1()
	if err := <-got3; err != nil {
		t.Fatalf("queued acquire err = %v", err)
	}
	rel2()
	rel2() // releases are idempotent
	waitFor(t, func() bool { return a.InUse() == 0 })
}

func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	a := NewAdmission(1, 4)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire err = %v, want DeadlineExceeded", err)
	}
	if got := a.QueueDepth(); got != 0 {
		t.Fatalf("QueueDepth after deadline = %d, want 0", got)
	}
}

func TestAdmissionCloseDrainsQueue(t *testing.T) {
	a := NewAdmission(1, 8)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			_, errs[slot] = a.Acquire(context.Background())
		}(i)
	}
	waitFor(t, func() bool { return a.QueueDepth() == 3 })
	a.Close()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrDraining) {
			t.Errorf("queued waiter %d err = %v, want ErrDraining", i, err)
		}
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Errorf("post-close acquire err = %v, want ErrDraining", err)
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// End-to-end: the service on the harness smoke dataset, with the exact
// triangle count cross-checked against the in-memory reference
// implementation (internal/baseline). CI runs this race-enabled; the
// shell-level counterpart (built pdtl-serve binary + curl) lives in the
// workflow's serve-smoke job.
package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pdtl/internal/baseline"
	"pdtl/internal/harness"
	"pdtl/internal/service"
)

func TestE2ETinyMatchesBaseline(t *testing.T) {
	h, err := harness.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	csr, err := h.LoadCSR("tiny")
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Forward(csr)
	if want == 0 {
		t.Fatal("baseline found no triangles in the tiny dataset")
	}
	base, err := h.Store("tiny")
	if err != nil {
		t.Fatal(err)
	}

	svc := service.New(service.Config{RunSlots: 2, QueueDepth: 8})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Shutdown(context.Background())
	client := ts.Client()

	// Register over the API.
	body, _ := json.Marshal(map[string]string{"name": "tiny", "base": base})
	resp, err := client.Post(ts.URL+"/v1/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d", resp.StatusCode)
	}

	// Exact count must match the in-memory reference.
	resp, err = client.Get(ts.URL + "/v1/graphs/tiny/count?workers=2")
	if err != nil {
		t.Fatal(err)
	}
	var count struct {
		Triangles uint64 `json:"triangles"`
		Origin    string `json:"origin"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&count); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if count.Triangles != want {
		t.Fatalf("service count = %d, baseline = %d", count.Triangles, want)
	}
	if count.Origin != "run" {
		t.Fatalf("cold count origin = %q", count.Origin)
	}

	// The full NDJSON stream has exactly one line per triangle.
	resp, err = client.Get(ts.URL + "/v1/graphs/tiny/triangles?workers=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines uint64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var tri struct{ U, V, W uint32 }
		if err := json.Unmarshal([]byte(line), &tri); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != want {
		t.Fatalf("streamed %d triangles, baseline = %d", lines, want)
	}

	// Health and metrics reflect the runs.
	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp, err = client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "pdtl_runs_started 2") {
		t.Errorf("metrics missing the two runs:\n%s", metrics)
	}
}

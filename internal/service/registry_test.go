package service

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"pdtl"
)

// genStore generates a small RMAT store and returns its base path.
func genStore(t *testing.T, scale uint, seed int64) string {
	t.Helper()
	return genStoreEF(t, scale, 8, seed)
}

// genStoreEF is genStore with an explicit edge factor. The blocking-stream
// tests need stores whose NDJSON listing far exceeds the iterator channel
// plus HTTP buffering, so a paused client reliably wedges the run.
func genStoreEF(t *testing.T, scale uint, edgeFactor int, seed int64) string {
	t.Helper()
	base := filepath.Join(t.TempDir(), fmt.Sprintf("rmat%d-%d", scale, seed))
	if _, err := pdtl.GenerateRMAT(base, scale, edgeFactor, seed); err != nil {
		t.Fatal(err)
	}
	return base
}

func TestRegistryRegisterGetEvict(t *testing.T) {
	base := genStore(t, 7, 1)
	r := NewRegistry(4)
	defer r.Close()
	e, err := r.Register("g", base)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "g" || e.Base() != base {
		t.Fatalf("entry = %s/%s", e.Name(), e.Base())
	}
	got, err := r.Get("g")
	if err != nil || got != e {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if _, err := r.Get("nope"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown Get err = %v", err)
	}
	if !r.Evict("g") {
		t.Fatal("Evict returned false")
	}
	if _, err := r.Get("g"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("post-evict Get err = %v", err)
	}
	// The evicted handle is closed: new runs fail.
	if _, err := e.Graph().Count(context.Background(), pdtl.Options{Workers: 1}); !errors.Is(err, pdtl.ErrClosed) {
		t.Fatalf("evicted handle Count err = %v, want ErrClosed", err)
	}
}

func TestRegistryLRUBound(t *testing.T) {
	r := NewRegistry(2)
	defer r.Close()
	bases := []string{genStore(t, 6, 1), genStore(t, 6, 2), genStore(t, 6, 3)}
	if _, err := r.Register("a", bases[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("b", bases[1]); err != nil {
		t.Fatal(err)
	}
	// Touch "a" so "b" is the LRU victim.
	if _, err := r.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("c", bases[2]); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if _, err := r.Get("b"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("LRU victim still present: %v", err)
	}
	for _, name := range []string{"a", "c"} {
		if _, err := r.Get(name); err != nil {
			t.Fatalf("survivor %q gone: %v", name, err)
		}
	}
}

func TestRegistryReRegisterInvalidates(t *testing.T) {
	base := genStore(t, 7, 4)
	r := NewRegistry(4)
	defer r.Close()
	e1, err := r.Register("g", base)
	if err != nil {
		t.Fatal(err)
	}
	met := &Metrics{}
	adm := NewAdmission(1, 4)
	ctx := context.Background()
	if _, _, err := e1.Do(ctx, ctx, "k", adm, met, func(context.Context) (any, error) {
		return 42, nil
	}); err != nil {
		t.Fatal(err)
	}
	if e1.CachedResults() != 1 {
		t.Fatalf("cached = %d, want 1", e1.CachedResults())
	}
	e2, err := r.Register("g", base)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Gen() <= e1.Gen() {
		t.Fatalf("gen not bumped: %d -> %d", e1.Gen(), e2.Gen())
	}
	if e2.CachedResults() != 0 {
		t.Fatal("re-registration must start with an empty result cache")
	}
	// The replaced handle is closed.
	if _, err := e1.Graph().Count(ctx, pdtl.Options{Workers: 1}); !errors.Is(err, pdtl.ErrClosed) {
		t.Fatalf("replaced handle err = %v, want ErrClosed", err)
	}
}

// TestDoSingleFlight drives Entry.Do with a controllable fake run: N
// concurrent identical requests must execute the run exactly once, with one
// OriginRun leader and N-1 OriginShared joiners, and a later request is an
// OriginCache hit.
func TestDoSingleFlight(t *testing.T) {
	base := genStore(t, 6, 5)
	r := NewRegistry(4)
	defer r.Close()
	e, err := r.Register("g", base)
	if err != nil {
		t.Fatal(err)
	}
	met := &Metrics{}
	adm := NewAdmission(2, 16)

	started := make(chan struct{})
	proceed := make(chan struct{})
	var runCount int
	run := func(context.Context) (any, error) {
		runCount++ // single-flight means no concurrent calls, no mutex needed
		close(started)
		<-proceed
		return "result", nil
	}

	const N = 6
	type out struct {
		val    any
		origin Origin
		err    error
	}
	outs := make([]out, N)
	var wg sync.WaitGroup
	ctx := context.Background()
	wg.Add(1)
	go func() {
		defer wg.Done()
		outs[0].val, outs[0].origin, outs[0].err = e.Do(ctx, ctx, "k", adm, met, run)
	}()
	<-started // the leader is inside run; every later Do must join its flight
	for i := 1; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i].val, outs[i].origin, outs[i].err = e.Do(ctx, ctx, "k", adm, met, run)
		}(i)
	}
	waitFor(t, func() bool {
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.flights["k"] != nil && e.flights["k"].waiters.Load() == N
	})
	close(proceed)
	wg.Wait()

	if runCount != 1 {
		t.Fatalf("run executed %d times, want 1", runCount)
	}
	var runs, shared int
	for i, o := range outs {
		if o.err != nil || o.val != "result" {
			t.Fatalf("out[%d] = %v, %v", i, o.val, o.err)
		}
		switch o.origin {
		case OriginRun:
			runs++
		case OriginShared:
			shared++
		}
	}
	if runs != 1 || shared != N-1 {
		t.Fatalf("origins: %d run + %d shared, want 1 + %d", runs, shared, N-1)
	}
	if met.RunsStarted.Load() != 1 || met.RunsShared.Load() != N-1 {
		t.Fatalf("metrics: started %d shared %d", met.RunsStarted.Load(), met.RunsShared.Load())
	}

	// The memoized result serves without touching run again.
	val, origin, err := e.Do(ctx, ctx, "k", adm, met, run)
	if err != nil || val != "result" || origin != OriginCache {
		t.Fatalf("cached Do = %v, %v, %v", val, origin, err)
	}
	if runCount != 1 || met.CacheHits.Load() != 1 {
		t.Fatalf("cache hit re-ran: count %d hits %d", runCount, met.CacheHits.Load())
	}
}

// TestDoAbandonedRunCancelled: when every waiter gives up, the run's
// context is cancelled and each waiter gets its own context error; the
// failed run is not cached.
func TestDoAbandonedRunCancelled(t *testing.T) {
	base := genStore(t, 6, 6)
	r := NewRegistry(4)
	defer r.Close()
	e, err := r.Register("g", base)
	if err != nil {
		t.Fatal(err)
	}
	met := &Metrics{}
	adm := NewAdmission(1, 4)

	started := make(chan struct{})
	run := func(runCtx context.Context) (any, error) {
		close(started)
		<-runCtx.Done() // a well-behaved engine run returns its ctx error
		return nil, runCtx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := e.Do(ctx, context.Background(), "k", adm, met, run)
		errc <- err
	}()
	<-started
	cancel() // the only waiter leaves; the run must be told to stop
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned Do err = %v, want context.Canceled", err)
	}
	if e.CachedResults() != 0 {
		t.Fatal("failed run must not be cached")
	}
	// The slot came back and the flight table is clean: a fresh request
	// runs again.
	val, origin, err := e.Do(context.Background(), context.Background(), "k", adm, met,
		func(context.Context) (any, error) { return 7, nil })
	if err != nil || origin != OriginRun || val != 7 {
		t.Fatalf("fresh Do after abandonment = %v, %v, %v", val, origin, err)
	}
}

// TestDoShutdownCancelsRun: cancelling the base context (server drain)
// aborts the in-flight run and surfaces ErrDraining.
func TestDoShutdownCancelsRun(t *testing.T) {
	base := genStore(t, 6, 7)
	r := NewRegistry(4)
	defer r.Close()
	e, err := r.Register("g", base)
	if err != nil {
		t.Fatal(err)
	}
	met := &Metrics{}
	adm := NewAdmission(1, 4)
	baseCtx, baseCancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, _, err := e.Do(context.Background(), baseCtx, "k", adm, met,
			func(runCtx context.Context) (any, error) {
				close(started)
				<-runCtx.Done()
				return nil, runCtx.Err()
			})
		errc <- err
	}()
	<-started
	baseCancel()
	if err := <-errc; !errors.Is(err, ErrDraining) {
		t.Fatalf("drained Do err = %v, want ErrDraining", err)
	}
}

// Package atest is a minimal analysistest-style harness for the
// pdtl-lint analyzers. The real golang.org/x/tools/go/analysis/analysistest
// depends on go/packages, which is not vendored here; this harness
// covers what the suite's tests need — type-checked fixture packages
// under testdata/src, object facts carried across fixture packages in
// load order, and "// want" expectation comments — using only the
// stdlib source importer.
//
// Expectation syntax is analysistest's core form: a trailing comment
//
//	// want "regexp" `regexp` ...
//
// on the offending line. Every diagnostic must match one expectation on
// its line and every expectation must be matched by exactly one
// diagnostic.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the named fixture packages from testdata/src/<name> in
// order, runs a on each, carrying object facts forward, and checks the
// diagnostics of every package against its want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	loaded := make(map[string]*loadedPkg)
	facts := make(map[types.Object][]analysis.Fact)
	for _, name := range pkgs {
		lp, err := load(fset, loaded, name)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", name, err)
		}
		diags := runPass(t, a, fset, lp, facts)
		check(t, fset, lp, diags)
	}
}

type loadedPkg struct {
	name  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// fixtureImporter resolves sibling fixture packages first and falls back
// to the stdlib source importer for everything else (stdlib and real
// module packages alike).
type fixtureImporter struct {
	fset   *token.FileSet
	loaded map[string]*loadedPkg
	fall   types.Importer
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, ".", 0)
}

func (im *fixtureImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if lp, ok := im.loaded[path]; ok {
		return lp.pkg, nil
	}
	if from, ok := im.fall.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return im.fall.Import(path)
}

func load(fset *token.FileSet, loaded map[string]*loadedPkg, name string) (*loadedPkg, error) {
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: &fixtureImporter{fset: fset, loaded: loaded, fall: importer.ForCompiler(fset, "source", nil)},
	}
	pkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{name: name, files: files, pkg: pkg, info: info}
	loaded[name] = lp
	return lp, nil
}

// runPass constructs an analysis.Pass over lp and runs the analyzer,
// returning its diagnostics. Facts flow through the shared store.
func runPass(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, lp *loadedPkg, facts map[types.Object][]analysis.Fact) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      lp.files,
		Pkg:        lp.pkg,
		TypesInfo:  lp.info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFile:   os.ReadFile,
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			want := reflect.TypeOf(fact)
			for _, f := range facts[obj] {
				if reflect.TypeOf(f) == want {
					reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
					return true
				}
			}
			return false
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			want := reflect.TypeOf(fact)
			// Store a copy so later mutation by the analyzer can't alias.
			cp := reflect.New(want.Elem())
			cp.Elem().Set(reflect.ValueOf(fact).Elem())
			for i, f := range facts[obj] {
				if reflect.TypeOf(f) == want {
					facts[obj][i] = cp.Interface().(analysis.Fact)
					return
				}
			}
			facts[obj] = append(facts[obj], cp.Interface().(analysis.Fact))
		},
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, lp.name, err)
	}
	return diags
}

// expectation is one "want" regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// check compares diagnostics against the want comments in lp's files.
func check(t *testing.T, fset *token.FileSet, lp *loadedPkg, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range lp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitPatterns(t, pos, m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// splitPatterns parses `"re" "re2"` (double- or back-quoted) after want.
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				t.Fatalf("%s: unterminated want pattern %q", pos, s)
			}
			raw, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", pos, s[:end+1], err)
			}
			out = append(out, raw)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern %q", pos, s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: want patterns must be quoted: %q", pos, s)
		}
	}
	return out
}

package pdtldir

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseBoundaries(t *testing.T) {
	cases := []struct {
		text, name string
		ok         bool
		arg        string
	}{
		{"//pdtl:hotpath", HotPath, true, ""},
		{"//pdtl:hotpath   ", HotPath, true, ""},
		{"//pdtl:hotpathology", HotPath, false, ""},
		{"// pdtl:hotpath", HotPath, false, ""}, // directives have no space after //
		{"//pdtl:nondeterministic-ok timing stat only", NondetOK, true, "timing stat only"},
		{"//pdtl:nondeterministic-ok", NondetOK, true, ""},
		{"//pdtl:nondeterministic-okay", NondetOK, false, ""},
	}
	for _, c := range cases {
		arg, ok := parse(c.text, c.name)
		if ok != c.ok || arg != c.arg {
			t.Errorf("parse(%q, %q) = (%q, %v), want (%q, %v)", c.text, c.name, arg, ok, c.arg, c.ok)
		}
	}
}

func TestIndexAt(t *testing.T) {
	src := `package p

func f() {
	//pdtl:nondeterministic-ok above
	_ = 1
	_ = 2 //pdtl:nondeterministic-ok same line
	_ = 3
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(fset, []*ast.File{f})
	pos := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	if arg, ok := ix.At(pos(5), NondetOK); !ok || arg != "above" {
		t.Errorf("line 5: (%q, %v), want covered by line-above directive", arg, ok)
	}
	if arg, ok := ix.At(pos(6), NondetOK); !ok || arg != "same line" {
		t.Errorf("line 6: (%q, %v), want covered by same-line directive", arg, ok)
	}
	if _, ok := ix.At(pos(8), NondetOK); ok {
		t.Error("line 8: should not be covered")
	}
}

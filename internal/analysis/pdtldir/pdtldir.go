// Package pdtldir parses PDTL's source directives — the machine-readable
// comments the internal/analysis suite keys on:
//
//	//pdtl:hotpath
//	    on a function's doc comment: the function is a zero-allocation
//	    hot path; hotpathalloc forbids allocating constructs in its body
//	    and, transitively, in every module function it statically calls.
//
//	//pdtl:nondeterministic-ok <reason>
//	    on a function's doc comment, on the offending line, or on the
//	    line directly above it: waives the determinism analyzer for that
//	    scope. The reason is mandatory — an unexplained waiver is itself
//	    a diagnostic.
//
// Directives follow the Go toolchain's directive comment convention:
// //-style, no space after the slashes, so godoc never renders them.
package pdtldir

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive names, without the leading "//".
const (
	HotPath  = "pdtl:hotpath"
	NondetOK = "pdtl:nondeterministic-ok"
)

// parse reports whether one comment line is the named directive, and
// returns its argument (the text after the name, space-trimmed).
func parse(text, name string) (arg string, ok bool) {
	body, ok := strings.CutPrefix(text, "//"+name)
	if !ok {
		return "", false
	}
	// "//pdtl:hotpathology" must not match "pdtl:hotpath".
	if body != "" && body[0] != ' ' && body[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(body), true
}

// FromDoc scans a doc comment group for the named directive.
func FromDoc(doc *ast.CommentGroup, name string) (arg string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if a, ok := parse(c.Text, name); ok {
			return a, true
		}
	}
	return "", false
}

// Index locates every pdtl: directive in a set of files by position, so
// statement-level suppressions ("same line, or the line above") resolve
// in O(1) per query.
type Index struct {
	fset *token.FileSet
	// byLine maps filename → line → directive name → argument.
	byLine map[string]map[int]map[string]string
}

// NewIndex builds the directive index over files.
func NewIndex(fset *token.FileSet, files []*ast.File) *Index {
	ix := &Index{fset: fset, byLine: make(map[string]map[int]map[string]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//pdtl:") {
					continue
				}
				for _, name := range []string{HotPath, NondetOK} {
					arg, ok := parse(text, name)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					lines := ix.byLine[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]string)
						ix.byLine[pos.Filename] = lines
					}
					if lines[pos.Line] == nil {
						lines[pos.Line] = make(map[string]string)
					}
					lines[pos.Line][name] = arg
				}
			}
		}
	}
	return ix
}

// At reports whether the named directive covers pos: a directive comment
// on the same line, or alone on the line immediately above.
func (ix *Index) At(pos token.Pos, name string) (arg string, ok bool) {
	p := ix.fset.Position(pos)
	lines := ix.byLine[p.Filename]
	if lines == nil {
		return "", false
	}
	if args, ok := lines[p.Line]; ok {
		if a, ok := args[name]; ok {
			return a, true
		}
	}
	if args, ok := lines[p.Line-1]; ok {
		if a, ok := args[name]; ok {
			return a, true
		}
	}
	return "", false
}

package metricreg_test

import (
	"testing"

	"pdtl/internal/analysis/atest"
	"pdtl/internal/analysis/metricreg"
)

func TestMetricReg(t *testing.T) {
	atest.Run(t, metricreg.Analyzer, "metricfix")
}

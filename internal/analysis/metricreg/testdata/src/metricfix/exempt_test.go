package metricfix

import "pdtl/internal/obs"

// Test files are exempt: tests register toy names on scratch registries.
func testOnlyRegister(r *obs.Registry) {
	r.Counter("t_h", "toy test metric.")
}

// Package metricfix exercises metricreg against the real obs.Registry
// API: naming policy, HELP policy, and once-only registration.
package metricfix

import "pdtl/internal/obs"

const goodName = "pdtl_good_total"

func register(r *obs.Registry, dynamic string) {
	r.Counter("pdtl_ok_total", "a well-formed counter.")
	r.Counter(goodName, "constant-folded names are fine.")

	r.Counter("pdtl_Bad_total", "uppercase violates the naming policy.") // want `does not match`
	r.Counter("engine_requests", "missing the pdtl_ prefix.")            // want `does not match`
	r.Counter("pdtl_runs2", "digits are not in \\[a-z_\\].")             // want `does not match`
	r.Counter(dynamic, "dynamic names defeat static checking.")          // want `must be a compile-time string constant`
	r.Gauge("pdtl_empty_help", "")                                       // want `needs non-empty HELP`
	r.Counter("pdtl_ok_total", "registered a second time.")              // want `registered more than once`

	r.Histogram("pdtl_lat_seconds", "histogram with bounds.", []float64{0.1, 1})
	r.Histogram("pdtl_lat_seconds", "duplicate histogram.", nil) // want `registered more than once`
}

// notARegistry has the same method name but a different receiver type:
// never checked.
type notARegistry struct{}

func (notARegistry) Counter(name, help string) {}

func otherReceiver(n notARegistry) {
	n.Counter("anything goes", "")
}

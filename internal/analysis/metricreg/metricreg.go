// Package metricreg statically checks every obs.Registry metric
// registration: the name must be a compile-time constant matching
// ^pdtl_[a-z_]+$, the HELP text must be a non-empty constant, and a
// name may be registered at most once per package — the obs registry is
// idempotent at runtime, so a duplicate registration silently aliases
// an existing series, which obslint only catches at scrape time (and
// only for series a scrape happens to exercise).
package metricreg

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzer is the metricreg pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricreg",
	Doc:  "check obs.Registry metric names (^pdtl_[a-z_]+$), HELP text, and once-only registration",
	Run:  run,
}

// obsPkgPath identifies the registry package; the method set below are
// its registration entry points (CounterVec.With is a series lookup,
// not a registration, and is deliberately absent).
const obsPkgPath = "pdtl/internal/obs"

var registerMethods = map[string]bool{
	"Counter":     true,
	"Gauge":       true,
	"CounterFunc": true,
	"GaugeFunc":   true,
	"ConstGauge":  true,
	"CounterVec":  true,
	"Histogram":   true,
}

var nameRE = regexp.MustCompile(`^pdtl_[a-z_]+$`)

func run(pass *analysis.Pass) (any, error) {
	// Fast path: packages that never import obs have nothing to check.
	imports := false
	for _, p := range pass.Pkg.Imports() {
		if p.Path() == obsPkgPath {
			imports = true
			break
		}
	}
	if !imports && pass.Pkg.Path() != obsPkgPath {
		return nil, nil
	}
	seen := make(map[string]token.Pos) // metric name → first registration
	for _, f := range pass.Files {
		// Tests register toy names on scratch registries to exercise the
		// machinery itself; the production naming policy applies only to
		// real registrations.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registerMethods[sel.Sel.Name] {
				return true
			}
			callee, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := callee.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			if !isObsRegistry(sig.Recv().Type()) {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			name, nameOK := constString(pass, call.Args[0])
			if !nameOK {
				pass.Reportf(call.Args[0].Pos(), "obs metric name must be a compile-time string constant")
				return true
			}
			if !nameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "obs metric name %q does not match ^pdtl_[a-z_]+$", name)
			}
			if help, ok := constString(pass, call.Args[1]); !ok {
				pass.Reportf(call.Args[1].Pos(), "obs metric %q HELP text must be a compile-time string constant", name)
			} else if help == "" {
				pass.Reportf(call.Args[1].Pos(), "obs metric %q needs non-empty HELP text", name)
			}
			if first, dup := seen[name]; dup {
				p := pass.Fset.Position(first)
				pass.Reportf(call.Pos(), "obs metric %q registered more than once (first at %s:%d)", name, p.Filename, p.Line)
			} else {
				seen[name] = call.Pos()
			}
			return true
		})
	}
	return nil, nil
}

// isObsRegistry reports whether t is obs.Registry or *obs.Registry.
func isObsRegistry(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Path() == obsPkgPath
}

// constString evaluates e as a constant string.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

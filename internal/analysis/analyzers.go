// Package analysis collects PDTL's project-specific static analyzers —
// the pdtl-lint suite. Each analyzer pins one load-bearing engine
// invariant that ordinary tests cover only probabilistically:
//
//   - hotpathalloc: //pdtl:hotpath functions (and their module callees)
//     contain no allocating constructs.
//   - wirecompat: gob wire structs use keyed literals everywhere, and
//     the committed wire.fingerprint only ever grows (append-only).
//   - ctxflow: context plumbing — no detached Background calls, bare
//     ctx.Err() returns, ctx-checked blocking loops.
//   - determinism: no map ranges, wall-clock reads, or math/rand in
//     listing-order-sensitive packages without an explained waiver.
//   - metricreg: obs metric names match ^pdtl_[a-z_]+$, carry HELP
//     text, and register once.
//
// The suite runs via cmd/pdtl-lint, either standalone or as
// go vet -vettool.
package analysis

import (
	"golang.org/x/tools/go/analysis"

	"pdtl/internal/analysis/ctxflow"
	"pdtl/internal/analysis/determinism"
	"pdtl/internal/analysis/hotpathalloc"
	"pdtl/internal/analysis/metricreg"
	"pdtl/internal/analysis/wirecompat"
)

// All returns the full pdtl-lint suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		determinism.Analyzer,
		hotpathalloc.Analyzer,
		metricreg.Analyzer,
		wirecompat.Analyzer,
	}
}

// Package wirecompat guards the cluster's gob wire format.
//
// Two checks:
//
//  1. Everywhere in the module, composite literals of structs declared
//     in the wire file (internal/cluster/wire.go) must use keyed
//     fields. Positional literals compile today and silently shear off
//     onto the wrong fields the day someone appends a field — which the
//     append-only policy explicitly invites them to do.
//
//  2. In the wire package itself, the live struct definitions are
//     fingerprinted (see internal/analysis/wirefp) and diffed against
//     the committed wire.fingerprint golden. Appending fields or
//     structs passes; renaming, retyping, removing, or reordering is
//     reported as a wire break. A stale golden (missing newly appended
//     fields) is reported as a reminder to run go generate.
package wirecompat

import (
	"flag"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"

	"pdtl/internal/analysis/wirefp"
)

// Analyzer is the wirecompat pass.
var Analyzer = &analysis.Analyzer{
	Name:  "wirecompat",
	Doc:   "require keyed literals for gob wire structs and enforce the append-only wire fingerprint",
	Flags: flags(),
	Run:   run,
}

var (
	// wirePkg is the package whose wire.go defines the gob protocol.
	wirePkg = "pdtl/internal/cluster"
	// wireFile is the base name of the defining file inside wirePkg.
	wireFile = "wire.go"
	// goldenName is the committed fingerprint, relative to wirePkg's dir.
	goldenName = "wire.fingerprint"
)

func flags() flag.FlagSet {
	fs := flag.NewFlagSet("wirecompat", flag.ExitOnError)
	fs.StringVar(&wirePkg, "wirepkg", wirePkg, "import path of the wire-definition package")
	fs.StringVar(&wireFile, "wirefile", wireFile, "file (base name) declaring the wire structs")
	fs.StringVar(&goldenName, "fingerprint", goldenName, "committed fingerprint file (base name, next to the wire file)")
	return *fs
}

func run(pass *analysis.Pass) (any, error) {
	checkKeyedLiterals(pass)
	if strings.TrimSuffix(pass.Pkg.Path(), "_test") == wirePkg {
		checkFingerprint(pass)
	}
	return nil, nil
}

// isWireStruct reports whether named is a struct declared in the wire
// file of the wire package.
func isWireStruct(pass *analysis.Pass, named *types.Named) bool {
	tn := named.Obj()
	if tn.Pkg() == nil || tn.Pkg().Path() != wirePkg {
		return false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return false
	}
	return filepath.Base(pass.Fset.Position(tn.Pos()).Filename) == wireFile
}

// checkKeyedLiterals flags positional composite literals of wire
// structs, wherever in the module they appear.
func checkKeyedLiterals(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || len(lit.Elts) == 0 {
				return true
			}
			t := pass.TypesInfo.TypeOf(lit)
			if t == nil {
				return true
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || !isWireStruct(pass, named) {
				return true
			}
			if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
				pass.Reportf(lit.Pos(),
					"wire struct %s.%s must use keyed fields: positional literals break silently when a wire field is appended",
					named.Obj().Pkg().Name(), named.Obj().Name())
			}
			return true
		})
	}
}

// checkFingerprint diffs the live wire types against the committed
// golden under the append-only policy.
func checkFingerprint(pass *analysis.Pass) {
	// Locate the wire file among this package's files; the in-package
	// test variant re-analyzes the same sources, so only the variant
	// that actually contains wire.go runs the diff (no double reports).
	var wireDecl *ast.File
	for _, f := range pass.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) == wireFile {
			wireDecl = f
			break
		}
	}
	if wireDecl == nil {
		return
	}
	dir := filepath.Dir(pass.Fset.Position(wireDecl.Pos()).Filename)
	goldenPath := filepath.Join(dir, goldenName)
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		pass.Reportf(wireDecl.Pos(), "wire fingerprint %s is missing (run: go generate ./internal/cluster): %v", goldenName, err)
		return
	}
	committed, err := wirefp.Parse(data)
	if err != nil {
		pass.Reportf(wireDecl.Pos(), "wire fingerprint %s is unreadable: %v", goldenName, err)
		return
	}
	live, err := wirefp.Compute(pass.Pkg, pass.Fset, wireFile)
	if err != nil {
		pass.Reportf(wireDecl.Pos(), "computing live wire fingerprint: %v", err)
		return
	}
	breaks := wirefp.CompareAppendOnly(committed, live)
	for _, msg := range breaks {
		pass.Reportf(wireDecl.Pos(), "%s", msg)
	}
	// The reverse direction is not a wire break, just a stale golden:
	// appended fields exist in the live types but not in the file.
	if len(breaks) == 0 && string(live.Marshal()) != string(data) {
		pass.Reportf(wireDecl.Pos(), "wire fingerprint %s is stale; run: go generate ./internal/cluster", goldenName)
	}
}

package wirecompat_test

import (
	"testing"

	"pdtl/internal/analysis/atest"
	"pdtl/internal/analysis/wirecompat"
)

// withWirePkg points the analyzer's -wirepkg flag at a fixture package
// for the duration of one subtest.
func withWirePkg(t *testing.T, pkg string) {
	t.Helper()
	fl := wirecompat.Analyzer.Flags.Lookup("wirepkg")
	def := fl.DefValue
	if err := wirecompat.Analyzer.Flags.Set("wirepkg", pkg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wirecompat.Analyzer.Flags.Set("wirepkg", def) })
}

func TestCleanAndKeyedLiterals(t *testing.T) {
	withWirePkg(t, "wirefix")
	atest.Run(t, wirecompat.Analyzer, "wirefix", "wireuse")
}

func TestAppendOnlyBreaks(t *testing.T) {
	withWirePkg(t, "wirebreak")
	atest.Run(t, wirecompat.Analyzer, "wirebreak")
}

func TestStaleGolden(t *testing.T) {
	withWirePkg(t, "wirestale")
	atest.Run(t, wirecompat.Analyzer, "wirestale")
}

// TestDefaultWirePkg pins the production configuration.
func TestDefaultWirePkg(t *testing.T) {
	if got := wirecompat.Analyzer.Flags.Lookup("wirepkg").DefValue; got != "pdtl/internal/cluster" {
		t.Fatalf("default -wirepkg = %q", got)
	}
	if got := wirecompat.Analyzer.Flags.Lookup("fingerprint").DefValue; got != "wire.fingerprint" {
		t.Fatalf("default -fingerprint = %q", got)
	}
}

// Package wirestale is the stale-golden fixture: the live types appended
// Extra (a legal, append-only change) but the fingerprint was not
// regenerated — a reminder, not a wire break.
package wirestale // want `is stale`

type Args struct {
	Name  string
	Extra int
}

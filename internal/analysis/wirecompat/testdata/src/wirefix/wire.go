// Package wirefix is the clean wirecompat fixture: the committed
// fingerprint matches the live types exactly, so the only diagnostics
// come from positional literals in the consumer package.
package wirefix

type Args struct {
	Name  string
	Count int
}

type Reply struct {
	OK bool
}

// Package wirebreak is the wire-break fixture: its committed fingerprint
// pins Args as (Name, Count, Gone) and a struct Old, but the live types
// reordered Name/Count, dropped Gone, and deleted Old — every class of
// non-append change at once.
package wirebreak // want `slot 0 changed` `slot 1 changed` `Gone \(slot 2\) was removed` `wirebreak.Old was removed`

type Args struct {
	Count int
	Name  string
}

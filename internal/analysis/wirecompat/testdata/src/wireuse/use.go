// Package wireuse exercises the module-wide keyed-literal rule from a
// package other than the wire package itself.
package wireuse

import "wirefix"

func keyed() wirefix.Args {
	return wirefix.Args{Name: "g", Count: 1}
}

func keyedNested() []wirefix.Args {
	return []wirefix.Args{{Name: "g", Count: 1}}
}

func unkeyed() wirefix.Args {
	return wirefix.Args{"g", 1} // want `must use keyed fields`
}

func unkeyedPtr() *wirefix.Reply {
	return &wirefix.Reply{true} // want `must use keyed fields`
}

// Non-wire structs are never constrained.
type local struct{ a, b int }

func localUnkeyed() local {
	return local{1, 2}
}

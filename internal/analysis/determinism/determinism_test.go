package determinism_test

import (
	"testing"

	"pdtl/internal/analysis/atest"
	"pdtl/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	def := determinism.Analyzer.Flags.Lookup("pkgs").DefValue
	if err := determinism.Analyzer.Flags.Set("pkgs", "detfix"); err != nil {
		t.Fatal(err)
	}
	defer determinism.Analyzer.Flags.Set("pkgs", def)
	atest.Run(t, determinism.Analyzer, "detfix")
}

// TestDefaultPackages pins the enforced set: the MGT pass loop, the
// scheduler, and the core engine.
func TestDefaultPackages(t *testing.T) {
	got := determinism.Analyzer.Flags.Lookup("pkgs").DefValue
	want := "pdtl/internal/mgt,pdtl/internal/sched,pdtl/internal/core"
	if got != want {
		t.Fatalf("default -pkgs = %q, want %q", got, want)
	}
}

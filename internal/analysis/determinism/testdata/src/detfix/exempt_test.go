package detfix

import "time"

// Test files are exempt: tests time themselves deliberately.
func testOnlyClock() time.Time {
	return time.Now()
}

// Package detfix exercises the determinism analyzer: the test opts this
// package in via the -pkgs flag, standing in for the real
// listing-order-sensitive packages (mgt, sched, core).
package detfix

import (
	"math/rand"
	"time"
)

func mapRange(m map[int]int) int {
	s := 0
	for k := range m { // want `map iteration order is nondeterministic`
		s += k
	}
	return s
}

func wallClock() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock`
}

func random() int {
	return rand.Int() // want `math/rand is nondeterministic`
}

// The waived side: every form the directive supports.

func waivedLineAbove() time.Time {
	//pdtl:nondeterministic-ok timing stat only
	return time.Now()
}

func waivedSameLine(m map[int]int) int {
	s := 0
	for k := range m { //pdtl:nondeterministic-ok sum is order-independent
		s += k
	}
	return s
}

// waivedDoc sums a map; the whole function is waived by its doc comment.
//
//pdtl:nondeterministic-ok sum is order-independent
func waivedDoc(m map[int]int) int {
	s := 0
	for k := range m {
		s += k
	}
	return s
}

// A waiver without a reason is itself a diagnostic.

func reasonlessLine() time.Time {
	//pdtl:nondeterministic-ok
	return time.Now() // want `needs a reason`
}

//pdtl:nondeterministic-ok
func reasonlessDoc() time.Time { // want `needs a reason`
	return time.Now()
}

// Slice iteration is ordered; never flagged.
func sliceRange(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Package determinism enforces PDTL's byte-identical-listing guarantee
// at compile time: in the listing-order-sensitive packages (the MGT pass
// loop, the chunk scheduler, and the core engine's assembly paths),
// sources of nondeterminism are banned unless explicitly waived with
//
//	//pdtl:nondeterministic-ok <reason>
//
// on the offending line, the line above it, or the enclosing function's
// doc comment. A waiver without a reason is itself a diagnostic.
//
// Flagged constructs: ranging over a map (iteration order is
// randomized), time.Now/Since/Until (wall-clock reads), and any use of
// math/rand or math/rand/v2. Test files are exempt — tests seed their
// own randomness deliberately.
package determinism

import (
	"flag"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"pdtl/internal/analysis/pdtldir"
)

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name:  "determinism",
	Doc:   "ban map ranges, wall-clock reads, and math/rand in listing-order-sensitive packages",
	Flags: flags(),
	Run:   run,
}

// sensitive lists the package paths the analyzer applies to,
// comma-separated; settable so fixtures can opt themselves in.
var sensitive = "pdtl/internal/mgt,pdtl/internal/sched,pdtl/internal/core"

func flags() flag.FlagSet {
	fs := flag.NewFlagSet("determinism", flag.ExitOnError)
	fs.StringVar(&sensitive, "pkgs", sensitive, "comma-separated package paths to enforce")
	return *fs
}

func run(pass *analysis.Pass) (any, error) {
	path := strings.TrimSuffix(pass.Pkg.Path(), "_test")
	enforced := false
	for _, p := range strings.Split(sensitive, ",") {
		if path == strings.TrimSpace(p) {
			enforced = true
			break
		}
	}
	if !enforced {
		return nil, nil
	}
	ix := pdtldir.NewIndex(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						report(pass, ix, stack, n.Pos(),
							"map iteration order is nondeterministic in a listing-order-sensitive package (iterate sorted keys)")
					}
				}
			case *ast.SelectorExpr:
				obj := pass.TypesInfo.Uses[n.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					switch obj.Name() {
					case "Now", "Since", "Until":
						report(pass, ix, stack, n.Pos(),
							"time."+obj.Name()+" reads the wall clock, which is nondeterministic in a listing-order-sensitive package")
					}
				case "math/rand", "math/rand/v2":
					report(pass, ix, stack, n.Pos(),
						obj.Pkg().Path()+" is nondeterministic in a listing-order-sensitive package")
				}
			}
			return true
		})
	}
	return nil, nil
}

// report emits the diagnostic unless a //pdtl:nondeterministic-ok waiver
// with a non-empty reason covers pos (line-level) or the enclosing
// function's doc. A reason-less waiver is reported instead.
func report(pass *analysis.Pass, ix *pdtldir.Index, stack []ast.Node, pos token.Pos, msg string) {
	if arg, ok := ix.At(pos, pdtldir.NondetOK); ok {
		if arg == "" {
			pass.Reportf(pos, "//pdtl:nondeterministic-ok needs a reason")
		}
		return
	}
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		if arg, ok := pdtldir.FromDoc(fd.Doc, pdtldir.NondetOK); ok {
			if arg == "" {
				pass.Reportf(fd.Pos(), "//pdtl:nondeterministic-ok needs a reason")
			}
			return
		}
	}
	pass.Reportf(pos, "%s (or annotate //pdtl:nondeterministic-ok <reason>)", msg)
}

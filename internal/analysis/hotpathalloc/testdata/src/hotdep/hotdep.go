// Package hotdep is the dependency fixture for hotpathalloc's
// cross-package fact propagation: none of these functions is annotated,
// so none produces diagnostics here, but Alloc and Wraps export
// AllocFacts that the annotated callers in the hotfix package see.
package hotdep

// Alloc allocates directly.
func Alloc(n int) []int {
	return make([]int, n)
}

// Clean is allocation-free.
func Clean(x int) int { return x + 1 }

// Wraps allocates transitively through Alloc.
func Wraps(n int) []int { return Alloc(n) }

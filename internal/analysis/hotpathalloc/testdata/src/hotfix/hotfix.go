// Package hotfix exercises every hotpathalloc diagnostic and the
// deliberate non-diagnostics (append, unannotated functions, directive
// name boundaries).
package hotfix

import (
	"fmt"

	"hotdep"
)

type pair struct{ a, b int }

//pdtl:hotpath
func hotMake(n int) int {
	s := make([]int, n) // want `make allocates`
	return len(s)
}

//pdtl:hotpath
func hotNew() *pair {
	return new(pair) // want `new allocates`
}

//pdtl:hotpath
func hotAddr() *pair {
	return &pair{a: 1, b: 2} // want `address-of composite literal allocates`
}

//pdtl:hotpath
func hotSliceLit() int {
	s := []int{1, 2, 3} // want `slice literal allocates`
	return len(s)
}

//pdtl:hotpath
func hotMapLit() int {
	m := map[int]int{1: 2} // want `map literal allocates`
	return len(m)
}

//pdtl:hotpath
func hotFmt(x int) {
	fmt.Println(x) // want `calls fmt.Println, which may allocate: all fmt functions allocate`
}

//pdtl:hotpath
func hotClosure(n int) func() int {
	f := func() int { return n } // want `closure captures n and allocates`
	return f
}

//pdtl:hotpath
func hotBox(v pair) any {
	var x any = v // want `interface boxing of pair allocates`
	return x
}

//pdtl:hotpath
func hotCallsDep(n int) int {
	return len(hotdep.Alloc(n)) // want `calls hotdep.Alloc, which may allocate`
}

//pdtl:hotpath
func hotCallsWraps(n int) int {
	return len(hotdep.Wraps(n)) // want `calls hotdep.Wraps, which may allocate`
}

// helper is unannotated: no diagnostics inside it, but annotated callers
// see through it.
func helper(n int) []int {
	return make([]int, n)
}

//pdtl:hotpath
func hotTransitive(n int) int {
	return len(helper(n)) // want `calls hotfix.helper, which may allocate`
}

// The suppressed side: everything below is allocation-clean or exempt.

//pdtl:hotpath
func hotCallsClean(x int) int {
	return hotdep.Clean(x)
}

//pdtl:hotpath
func hotAppend(dst []int, v int) []int {
	return append(dst, v) // append is deliberately unflagged (budgeted by callers)
}

//pdtl:hotpath
func hotPointerShaped(p *pair) any {
	var x any = p // pointer-shaped: stored in the interface word, no boxing
	return x
}

//pdtl:hotpathology is a comment, not a directive: no enforcement here.
func notHot(n int) []int {
	return make([]int, n)
}

// Package hotpathalloc statically enforces PDTL's zero-allocation hot
// paths: a function whose doc comment carries the //pdtl:hotpath
// directive may not contain allocating constructs, and may not
// statically call a module function that does. The runtime AllocsPerRun
// pins catch regressions only on the inputs the tests exercise; this
// analyzer checks every line of every build.
//
// Allocating constructs flagged in an annotated function's body:
//
//   - make and new
//   - heap-bound composite literals: &T{...}, and slice or map literals
//   - closures that capture enclosing variables (the closure object and
//     captured variables move to the heap)
//   - interface boxing: passing, assigning, or returning a non-pointer-
//     shaped concrete value where an interface is expected
//   - calls into package fmt (all of which allocate)
//   - calls to module functions that themselves may allocate, found
//     transitively via a per-function summary exported as an analysis
//     fact — the directive propagates to static callees across package
//     boundaries
//
// Deliberately NOT flagged, documented here so reviewers know the
// contract: append (amortized, budgeted by the caller's pre-sized
// buffers), string conversions/concatenation (absent from the engine's
// hot paths), and dynamic calls through interfaces (the kernel
// singletons are annotated directly instead).
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"pdtl/internal/analysis/pdtldir"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name:      "hotpathalloc",
	Doc:       "forbid allocating constructs in //pdtl:hotpath functions and their module callees",
	Run:       run,
	FactTypes: []analysis.Fact{(*AllocFact)(nil)},
}

// AllocFact marks a function that may allocate, with a one-line cause.
// It is exported for every such function so annotated callers in
// downstream packages flag the call site.
type AllocFact struct{ Why string }

// AFact marks AllocFact as an analysis fact.
func (*AllocFact) AFact() {}

func (f *AllocFact) String() string { return "mayAlloc: " + f.Why }

// site is one allocating construct inside a function body.
type site struct {
	pos token.Pos
	why string
}

// callSite is one statically resolved call.
type callSite struct {
	pos    token.Pos
	callee *types.Func
}

type fnInfo struct {
	decl    *ast.FuncDecl
	hotpath bool
	direct  []site
	calls   []callSite
	// why is non-empty once the function is known to possibly allocate.
	why string
}

func run(pass *analysis.Pass) (any, error) {
	infos := make(map[*types.Func]*fnInfo)
	var order []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			_, hot := pdtldir.FromDoc(fd.Doc, pdtldir.HotPath)
			info := &fnInfo{decl: fd, hotpath: hot}
			collect(pass, fd, info)
			infos[obj] = info
			order = append(order, obj)
		}
	}

	// Seed: direct allocations.
	for _, obj := range order {
		if info := infos[obj]; len(info.direct) > 0 {
			p := pass.Fset.Position(info.direct[0].pos)
			info.why = fmt.Sprintf("%s at %s:%d", info.direct[0].why, p.Filename, p.Line)
		}
	}
	// Fixpoint: propagate through same-package static calls. Cross-package
	// callees resolve through imported facts and are stable within one pass.
	for changed := true; changed; {
		changed = false
		for _, obj := range order {
			info := infos[obj]
			if info.why != "" {
				continue
			}
			for _, c := range info.calls {
				if why := calleeWhy(pass, infos, c.callee); why != "" {
					info.why = fmt.Sprintf("calls %s, which may allocate (%s)", c.callee.FullName(), why)
					changed = true
					break
				}
			}
		}
	}

	// Export facts so annotated callers in downstream packages see through
	// this package's functions.
	for _, obj := range order {
		if info := infos[obj]; info.why != "" {
			pass.ExportObjectFact(obj, &AllocFact{Why: info.why})
		}
	}

	// Diagnostics, only inside annotated functions.
	for _, obj := range order {
		info := infos[obj]
		if !info.hotpath {
			continue
		}
		for _, s := range info.direct {
			pass.Reportf(s.pos, "//pdtl:hotpath function %s: %s", obj.Name(), s.why)
		}
		for _, c := range info.calls {
			if why := calleeWhy(pass, infos, c.callee); why != "" {
				pass.Reportf(c.pos, "//pdtl:hotpath function %s calls %s, which may allocate: %s", obj.Name(), c.callee.FullName(), why)
			}
		}
	}
	return nil, nil
}

// calleeWhy reports why a statically resolved callee may allocate, or ""
// if it is (or must be assumed) allocation-free. Module-external callees
// without facts are assumed clean, except package fmt.
func calleeWhy(pass *analysis.Pass, infos map[*types.Func]*fnInfo, fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if fn.Pkg() == pass.Pkg {
		if info, ok := infos[fn]; ok {
			return info.why
		}
		return ""
	}
	if fn.Pkg().Path() == "fmt" {
		return "all fmt functions allocate"
	}
	var fact AllocFact
	if pass.ImportObjectFact(fn, &fact) {
		return fact.Why
	}
	return ""
}

// collect records every direct allocating construct and every statically
// resolved call in fd's body.
func collect(pass *analysis.Pass, fd *ast.FuncDecl, info *fnInfo) {
	inAddrOf := make(map[*ast.CompositeLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			collectCall(pass, n, info)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					inAddrOf[cl] = true
					info.direct = append(info.direct, site{n.Pos(), "address-of composite literal allocates"})
				}
			}
		case *ast.CompositeLit:
			if inAddrOf[n] {
				return true
			}
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				info.direct = append(info.direct, site{n.Pos(), "slice literal allocates"})
				// The outer literal is the allocation; don't descend into
				// element literals and double-report.
				return false
			case *types.Map:
				info.direct = append(info.direct, site{n.Pos(), "map literal allocates"})
				return false
			}
		case *ast.FuncLit:
			if v := captured(pass, fd, n); v != "" {
				info.direct = append(info.direct, site{n.Pos(), fmt.Sprintf("closure captures %s and allocates", v)})
			}
		case *ast.ReturnStmt:
			collectReturnBoxing(pass, fd, n, info)
		case *ast.AssignStmt:
			collectAssignBoxing(pass, n, info)
		case *ast.ValueSpec:
			collectSpecBoxing(pass, n, info)
		}
		return true
	})
}

// collectCall handles make/new, static callees, and argument boxing.
func collectCall(pass *analysis.Pass, call *ast.CallExpr, info *fnInfo) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				info.direct = append(info.direct, site{call.Pos(), "make allocates"})
			case "new":
				info.direct = append(info.direct, site{call.Pos(), "new allocates"})
			}
			return
		}
	}
	// Conversions are not calls.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if callee := typeutil.StaticCallee(pass.TypesInfo, call); callee != nil {
		info.calls = append(info.calls, callSite{call.Pos(), callee})
		if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
			// The call itself is already flagged through the fmt denylist;
			// boxing its ...any arguments would double-report.
			return
		}
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if ok {
		collectArgBoxing(pass, call, sig, info)
	}
}

// collectArgBoxing flags concrete non-pointer-shaped values passed to
// interface parameters.
func collectArgBoxing(pass *analysis.Pass, call *ast.CallExpr, sig *types.Signature, info *fnInfo) {
	if call.Ellipsis.IsValid() {
		return // slice passed through; no per-element boxing here
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if why := boxes(pass, pt, pass.TypesInfo.TypeOf(arg)); why != "" {
			info.direct = append(info.direct, site{arg.Pos(), why})
		}
	}
}

func collectReturnBoxing(pass *analysis.Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt, info *fnInfo) {
	results := fd.Type.Results
	if results == nil || len(ret.Results) == 0 {
		return
	}
	// Only the one-to-one form; "return f()" spreads are rare and skipped.
	var resTypes []types.Type
	for _, field := range results.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		n := max(len(field.Names), 1)
		for range n {
			resTypes = append(resTypes, t)
		}
	}
	if len(resTypes) != len(ret.Results) {
		return
	}
	for i, e := range ret.Results {
		if why := boxes(pass, resTypes[i], pass.TypesInfo.TypeOf(e)); why != "" {
			info.direct = append(info.direct, site{e.Pos(), why})
		}
	}
}

func collectAssignBoxing(pass *analysis.Pass, as *ast.AssignStmt, info *fnInfo) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := pass.TypesInfo.TypeOf(as.Lhs[i])
		if lt == nil {
			continue
		}
		if why := boxes(pass, lt, pass.TypesInfo.TypeOf(as.Rhs[i])); why != "" {
			info.direct = append(info.direct, site{as.Rhs[i].Pos(), why})
		}
	}
}

func collectSpecBoxing(pass *analysis.Pass, spec *ast.ValueSpec, info *fnInfo) {
	if spec.Type == nil || len(spec.Values) == 0 {
		return
	}
	lt := pass.TypesInfo.TypeOf(spec.Type)
	for _, v := range spec.Values {
		if why := boxes(pass, lt, pass.TypesInfo.TypeOf(v)); why != "" {
			info.direct = append(info.direct, site{v.Pos(), why})
		}
	}
}

// boxes reports why storing a value of type "from" into a location of
// type "to" allocates, or "" when it does not: the destination must be
// an interface and the source a concrete type the runtime cannot store
// directly in the interface word.
func boxes(pass *analysis.Pass, to, from types.Type) string {
	if to == nil || from == nil || !types.IsInterface(to) {
		return ""
	}
	if types.IsInterface(from) {
		return "" // interface-to-interface conversions don't box
	}
	if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return ""
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return "" // pointer-shaped: stored directly in the interface word
	case *types.Basic:
		if from.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return ""
		}
	}
	if pass.TypesSizes != nil && pass.TypesSizes.Sizeof(from) == 0 {
		return "" // zero-sized values box to a static address
	}
	return fmt.Sprintf("interface boxing of %s allocates", types.TypeString(from, types.RelativeTo(pass.Pkg)))
}

// captured returns the name of a variable the func literal captures from
// its enclosing function, or "" when it captures nothing (a capture-free
// literal compiles to a static closure and does not allocate).
func captured(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared inside the enclosing function but outside
		// this literal. Package-level vars aren't captures.
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

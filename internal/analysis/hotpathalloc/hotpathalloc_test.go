package hotpathalloc_test

import (
	"testing"

	"pdtl/internal/analysis/atest"
	"pdtl/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	// hotdep loads first so its AllocFacts are available when hotfix's
	// annotated callers are analyzed — the cross-package propagation the
	// vet driver provides through .vetx files.
	atest.Run(t, hotpathalloc.Analyzer, "hotdep", "hotfix")
}

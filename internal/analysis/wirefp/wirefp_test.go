package wirefp

import (
	"go/importer"
	"go/token"
	"os"
	"testing"
)

// TestGoldenCurrent regenerates the fingerprint from the live cluster
// types and diffs it byte-for-byte against the committed golden. If this
// fails after you appended a wire field, run:
//
//	go generate ./internal/cluster
//
// If it fails because an existing entry changed, you have broken the
// wire format — see the append-only policy in the file header.
func TestGoldenCurrent(t *testing.T) {
	fset := token.NewFileSet()
	pkg, err := importer.ForCompiler(fset, "source", nil).Import("pdtl/internal/cluster")
	if err != nil {
		t.Fatalf("loading wire package: %v", err)
	}
	fp, err := Compute(pkg, fset, "wire.go")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("../../cluster/wire.fingerprint")
	if err != nil {
		t.Fatalf("reading committed golden: %v", err)
	}
	if got := fp.Marshal(); string(got) != string(want) {
		committed, perr := Parse(want)
		if perr != nil {
			t.Fatalf("committed golden unparseable: %v", perr)
		}
		if breaks := CompareAppendOnly(committed, fp); len(breaks) > 0 {
			for _, b := range breaks {
				t.Errorf("wire break: %s", b)
			}
			t.Fatal("live wire types are not an append-only extension of the committed fingerprint")
		}
		t.Fatal("wire.fingerprint is stale; run: go generate ./internal/cluster")
	}
}

// TestParseRoundTrip checks Marshal/Parse are inverse on the live types.
func TestParseRoundTrip(t *testing.T) {
	fp := &Fingerprint{Structs: []Struct{
		{Kind: "struct", Name: "p.A", Fields: []Field{{"X", "int"}, {"Y", "[]p.B"}}},
		{Kind: "type", Name: "p.K", Fields: []Field{{"=", "string"}}},
	}}
	back, err := Parse(fp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if string(back.Marshal()) != string(fp.Marshal()) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", fp.Marshal(), back.Marshal())
	}
}

func fpOf(fields ...Field) *Fingerprint {
	return &Fingerprint{Structs: []Struct{{Kind: "struct", Name: "p.A", Fields: fields}}}
}

func TestCompareAppendOnly(t *testing.T) {
	base := fpOf(Field{"X", "int"}, Field{"Y", "string"})

	if breaks := CompareAppendOnly(base, fpOf(Field{"X", "int"}, Field{"Y", "string"}, Field{"Z", "bool"})); len(breaks) != 0 {
		t.Errorf("append flagged as break: %v", breaks)
	}
	if breaks := CompareAppendOnly(base, fpOf(Field{"X", "int"})); len(breaks) != 1 {
		t.Errorf("removal not flagged: %v", breaks)
	}
	if breaks := CompareAppendOnly(base, fpOf(Field{"Y", "string"}, Field{"X", "int"})); len(breaks) != 2 {
		t.Errorf("reorder not flagged per slot: %v", breaks)
	}
	if breaks := CompareAppendOnly(base, fpOf(Field{"X", "int64"}, Field{"Y", "string"})); len(breaks) != 1 {
		t.Errorf("retype not flagged: %v", breaks)
	}
	gone := &Fingerprint{}
	if breaks := CompareAppendOnly(base, gone); len(breaks) != 1 {
		t.Errorf("struct removal not flagged: %v", breaks)
	}
	// New structs in live are fine.
	grown := &Fingerprint{Structs: append(append([]Struct{}, base.Structs...),
		Struct{Kind: "struct", Name: "p.New", Fields: []Field{{"N", "int"}}})}
	if breaks := CompareAppendOnly(base, grown); len(breaks) != 0 {
		t.Errorf("new struct flagged as break: %v", breaks)
	}
}

// Package wirefp computes the gob wire-format fingerprint of the
// cluster protocol: every struct declared in internal/cluster/wire.go,
// expanded transitively through every module-internal named type its
// fields reach, rendered as an ordered, diffable text form.
//
// The fingerprint is committed as internal/cluster/wire.fingerprint and
// kept current by go:generate. Its policy is append-only: gob tolerates
// *adding* fields (decoders skip unknown names, encoders omit zero
// values), but renaming, retyping, removing, or reordering an existing
// field silently corrupts mixed-version clusters. The wirecompat
// analyzer diffs the committed fingerprint against the live types and
// reports any non-append change.
package wirefp

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Header introduces the generated file and states the policy.
const Header = `# PDTL cluster wire fingerprint. Generated; do not edit by hand.
# Regenerate: go generate ./internal/cluster
# Policy: append-only. Adding a field or struct is fine; renaming,
# retyping, removing, or reordering an existing entry is a wire break
# and is rejected by pdtl-lint's wirecompat analyzer.
`

// Field is one struct field (or, for non-struct named types, the
// underlying type spelled as a single pseudo-field).
type Field struct {
	Name string
	Type string
}

// Struct is one named type's fingerprint. Kind is "struct" or "type".
type Struct struct {
	Kind   string
	Name   string // fully qualified: pdtl/internal/cluster.CountArgs
	Fields []Field
}

// Fingerprint is the ordered fingerprint of the whole wire surface.
type Fingerprint struct {
	Structs []Struct
}

// moduleInternal reports whether a package is part of this module (the
// types whose definitions we control and must therefore pin).
func moduleInternal(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == "pdtl" || strings.HasPrefix(p, "pdtl/")
}

// qual renders package names as full import paths so the fingerprint is
// unambiguous no matter where it is read from.
func qual(p *types.Package) string { return p.Path() }

// Compute builds the fingerprint for pkg. Root types are the named types
// whose declarations sit in a file with base name wireFile (normally
// "wire.go"); the fingerprint then expands through every module-internal
// named type reachable from a root's fields, in deterministic
// declaration-then-discovery order.
func Compute(pkg *types.Package, fset *token.FileSet, wireFile string) (*Fingerprint, error) {
	scope := pkg.Scope()
	var roots []*types.TypeName
	for _, name := range scope.Names() { // scope.Names is sorted
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		file := fset.Position(tn.Pos()).Filename
		if base(file) == wireFile {
			roots = append(roots, tn)
		}
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("wirefp: no named types declared in %s of %s", wireFile, pkg.Path())
	}
	// Declaration order, not alphabetical: the file reads top-down.
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })

	fp := &Fingerprint{}
	seen := make(map[*types.TypeName]bool)
	queue := roots
	for len(queue) > 0 {
		tn := queue[0]
		queue = queue[1:]
		if seen[tn] {
			continue
		}
		seen[tn] = true
		full := tn.Pkg().Path() + "." + tn.Name()
		if st, ok := tn.Type().Underlying().(*types.Struct); ok {
			s := Struct{Kind: "struct", Name: full}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !f.Exported() {
					continue // gob ignores unexported fields
				}
				s.Fields = append(s.Fields, Field{Name: f.Name(), Type: types.TypeString(f.Type(), qual)})
				queue = appendReachable(queue, seen, f.Type())
			}
			fp.Structs = append(fp.Structs, s)
		} else {
			fp.Structs = append(fp.Structs, Struct{
				Kind:   "type",
				Name:   full,
				Fields: []Field{{Name: "=", Type: types.TypeString(tn.Type().Underlying(), qual)}},
			})
		}
	}
	return fp, nil
}

// appendReachable pushes module-internal named types found anywhere in t
// onto the work queue.
func appendReachable(queue []*types.TypeName, seen map[*types.TypeName]bool, t types.Type) []*types.TypeName {
	switch t := t.(type) {
	case *types.Named:
		if tn := t.Obj(); moduleInternal(tn.Pkg()) && !seen[tn] {
			queue = append(queue, tn)
		}
	case *types.Pointer:
		queue = appendReachable(queue, seen, t.Elem())
	case *types.Slice:
		queue = appendReachable(queue, seen, t.Elem())
	case *types.Array:
		queue = appendReachable(queue, seen, t.Elem())
	case *types.Map:
		queue = appendReachable(queue, seen, t.Key())
		queue = appendReachable(queue, seen, t.Elem())
	}
	return queue
}

// Marshal renders the fingerprint in its canonical text form.
func (fp *Fingerprint) Marshal() []byte {
	var b strings.Builder
	b.WriteString(Header)
	for _, s := range fp.Structs {
		fmt.Fprintf(&b, "%s %s\n", s.Kind, s.Name)
		for i, f := range s.Fields {
			fmt.Fprintf(&b, "  %d %s %s\n", i, f.Name, f.Type)
		}
	}
	return []byte(b.String())
}

// Parse reads the canonical text form back. Comment lines (#) and blank
// lines are ignored.
func Parse(data []byte) (*Fingerprint, error) {
	fp := &Fingerprint{}
	var cur *Struct
	for ln, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if strings.HasPrefix(line, "  ") {
			if cur == nil {
				return nil, fmt.Errorf("wirefp: line %d: field before any struct header", ln+1)
			}
			parts := strings.SplitN(trimmed, " ", 3)
			if len(parts) != 3 {
				return nil, fmt.Errorf("wirefp: line %d: malformed field line %q", ln+1, line)
			}
			cur.Fields = append(cur.Fields, Field{Name: parts[1], Type: parts[2]})
			continue
		}
		parts := strings.SplitN(trimmed, " ", 2)
		if len(parts) != 2 || (parts[0] != "struct" && parts[0] != "type") {
			return nil, fmt.Errorf("wirefp: line %d: malformed header %q", ln+1, line)
		}
		fp.Structs = append(fp.Structs, Struct{Kind: parts[0], Name: parts[1]})
		cur = &fp.Structs[len(fp.Structs)-1]
	}
	return fp, nil
}

// CompareAppendOnly diffs committed (the golden) against live (the
// current types) under the append-only policy and returns one message
// per violation. Appended fields and brand-new structs are allowed;
// everything else is a wire break.
func CompareAppendOnly(committed, live *Fingerprint) []string {
	var breaks []string
	liveByName := make(map[string]Struct, len(live.Structs))
	for _, s := range live.Structs {
		liveByName[s.Name] = s
	}
	for _, old := range committed.Structs {
		now, ok := liveByName[old.Name]
		if !ok {
			breaks = append(breaks, fmt.Sprintf("wire type %s was removed (fingerprint still pins it)", old.Name))
			continue
		}
		if now.Kind != old.Kind {
			breaks = append(breaks, fmt.Sprintf("wire type %s changed kind %s -> %s", old.Name, old.Kind, now.Kind))
			continue
		}
		for i, f := range old.Fields {
			if i >= len(now.Fields) {
				breaks = append(breaks, fmt.Sprintf("wire field %s.%s (slot %d) was removed", old.Name, f.Name, i))
				continue
			}
			g := now.Fields[i]
			if g.Name != f.Name || g.Type != f.Type {
				breaks = append(breaks, fmt.Sprintf(
					"wire field %s slot %d changed: %s %s -> %s %s (append new fields; never rename, retype, or reorder)",
					old.Name, i, f.Name, f.Type, g.Name, g.Type))
			}
		}
	}
	return breaks
}

func base(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

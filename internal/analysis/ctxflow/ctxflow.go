// Package ctxflow enforces PDTL's context conventions (established in
// PR 2 and load-bearing ever since): long-running work is cancellable,
// and cancellation surfaces as the bare ctx.Err().
//
// Three rules, scoped to what can be decided reliably from one
// package's syntax and types:
//
//  1. A function that already receives a context.Context must not hand
//     context.Background() or context.TODO() to a callee — that
//     detaches the callee from the caller's cancellation. (Assigning
//     Background to default a nil ctx is the documented idiom and is
//     allowed; so is Background inside a `go`-launched literal, which
//     is deliberately detached work.)
//  2. Cancellation errors return bare: fmt.Errorf("...%w", ctx.Err())
//     and friends are flagged, because every engine layer compares
//     errors.Is(err, context.Canceled) against the *unwrapped*
//     convention and the cluster wire re-encodes error strings.
//  3. In a function with a context.Context parameter, a loop that does
//     blocking work — file/socket reads or writes, *rpc.Client calls,
//     or calls into cancellable (ctx-taking) APIs — must consult a
//     context somewhere in the loop: check ctx.Err(), select on
//     ctx.Done(), or pass ctx to a callee. This is the chunk/window
//     loop rule: one check per iteration bounds cancellation latency.
//
// Test files are exempt from rules 1 and 3.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "enforce context plumbing: no detached Background calls, bare ctx.Err() returns, ctx-checked blocking loops",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		test := strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBareErr(pass, fd)
			if test {
				continue
			}
			if !hasCtxParam(pass, fd) {
				continue
			}
			checkDetachedBackground(pass, fd)
			checkBlockingLoops(pass, fd)
		}
	}
	return nil, nil
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func hasCtxParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isCtxType(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// checkDetachedBackground flags context.Background()/TODO() passed as a
// call argument inside a ctx-bearing function, outside go-launched
// literals.
func checkDetachedBackground(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Positions covered by a `go func(){...}()` literal are exempt.
	type span struct{ lo, hi ast.Node }
	var detached []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			detached = append(detached, span{lit, lit})
		}
		return true
	})
	inDetached := func(n ast.Node) bool {
		for _, s := range detached {
			if n.Pos() >= s.lo.Pos() && n.End() <= s.hi.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			inner, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := typeutil.StaticCallee(pass.TypesInfo, inner)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				continue
			}
			if (fn.Name() == "Background" || fn.Name() == "TODO") && !inDetached(arg) {
				pass.Reportf(arg.Pos(), "function %s has a context.Context parameter; pass it (or derive from it) instead of context.%s()", fd.Name.Name, fn.Name())
			}
		}
		return true
	})
}

// checkBareErr flags wrapping ctx.Err() in fmt.Errorf: cancellation
// errors must be returned bare.
func checkBareErr(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
			return true
		}
		for _, arg := range call.Args {
			inner, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := inner.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Err" || len(inner.Args) != 0 {
				continue
			}
			if recv := pass.TypesInfo.TypeOf(sel.X); recv != nil && isCtxType(recv) {
				pass.Reportf(call.Pos(), "wrapping ctx.Err() breaks the bare-cancellation convention; return ctx.Err() itself")
			}
		}
		return true
	})
}

// checkBlockingLoops flags for/range loops that do blocking work without
// consulting any context.
func checkBlockingLoops(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Walk outermost loops; nested loops are covered by their outermost
	// enclosing loop (a ctx check at any depth inside it counts).
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		if blockPos, what := firstBlockingCall(pass, body); blockPos != nil {
			if !referencesCtx(pass, body) {
				pass.Reportf(blockPos.Pos(), "loop in %s %s without consulting a context; check ctx.Err() or pass ctx once per iteration", fd.Name.Name, what)
			}
		}
		return false // outermost loop handled; don't re-flag inner loops
	}
	ast.Inspect(fd.Body, visit)
}

// firstBlockingCall finds a call that blocks or is cancellable: an
// *rpc.Client Call/Go, an I/O method on a file/socket-like receiver, or
// a callee that itself takes a context.Context (a cancellable API being
// driven in a loop).
func firstBlockingCall(pass *analysis.Pass, body ast.Node) (at ast.Node, what string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if at != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil {
			// Dynamic call: still blocking if it's an io-style method.
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && ioMethod(pass, sel) {
				at, what = call, "performs I/O ("+sel.Sel.Name+")"
			}
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil {
			for i := 0; i < sig.Params().Len(); i++ {
				if isCtxType(sig.Params().At(i).Type()) {
					at, what = call, "calls cancellable "+fn.Name()
					return false
				}
			}
		}
		if recv := recvType(fn); recv != "" {
			switch {
			case recv == "net/rpc.Client" && (fn.Name() == "Call" || fn.Name() == "Go"):
				at, what = call, "issues RPCs"
				return false
			case ioReceiver(recv) && ioName(fn.Name()):
				at, what = call, "performs I/O ("+recv+"."+fn.Name()+")"
				return false
			}
		}
		return true
	})
	return at, what
}

// referencesCtx reports whether any expression of type context.Context
// is used inside n.
func referencesCtx(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && isCtxType(obj.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// recvType renders a method's receiver as "pkgpath.Type", "" for
// functions.
func recvType(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

func ioName(name string) bool {
	switch name {
	case "Read", "ReadAt", "ReadFull", "Write", "WriteAt", "Seek", "Sync", "Accept", "ReadFrom", "WriteTo":
		return true
	}
	return false
}

// ioReceiver limits the I/O method rule to receivers that actually hit
// the disk or the network; in-memory buffers are not blocking.
func ioReceiver(recv string) bool {
	switch {
	case strings.HasPrefix(recv, "os."),
		strings.HasPrefix(recv, "net."),
		strings.HasPrefix(recv, "net/rpc."),
		strings.HasPrefix(recv, "bufio."),
		strings.HasPrefix(recv, "pdtl/internal/ioacct."):
		return true
	}
	return false
}

// ioMethod is the dynamic-dispatch fallback: an interface-typed receiver
// whose method is an io.Reader/io.Writer-shaped call.
func ioMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil || !types.IsInterface(t) {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "io" {
		return false
	}
	return ioName(sel.Sel.Name)
}

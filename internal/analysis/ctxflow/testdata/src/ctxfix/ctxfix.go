// Package ctxfix exercises ctxflow's three rules and the engine idioms
// they must not flag (nil-default contexts, detached goroutines,
// ctx-checked loops).
package ctxfix

import (
	"context"
	"fmt"
	"os"
)

func doWork(ctx context.Context, n int) error { return nil }

// Rule 1: Background/TODO passed onward from a ctx-bearing function.

func detach(ctx context.Context) {
	doWork(context.Background(), 1) // want `pass it \(or derive from it\) instead of context.Background`
	doWork(context.TODO(), 2)       // want `pass it \(or derive from it\) instead of context.TODO`
}

// nilDefault is the documented engine idiom: nil means Background. The
// assignment is not a call argument, so rule 1 stays quiet.
func nilDefault(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return doWork(ctx, 1)
}

// detached launches deliberately detached work; Background inside a
// go-literal is allowed.
func detached(ctx context.Context, done chan<- struct{}) {
	go func() {
		doWork(context.Background(), 2)
		done <- struct{}{}
	}()
}

// noCtxParam has no context parameter; rule 1 does not apply.
func noCtxParam() error {
	return doWork(context.Background(), 3)
}

// Rule 2: cancellation errors return bare.

func wrapErr(ctx context.Context) error {
	if ctx.Err() != nil {
		return fmt.Errorf("listing aborted: %w", ctx.Err()) // want `return ctx.Err\(\) itself`
	}
	return nil
}

func bareErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// Rule 3: blocking loops must consult a context.

func readLoop(ctx context.Context, f *os.File, buf []byte) error {
	for i := 0; i < 8; i++ {
		if _, err := f.Read(buf); err != nil { // want `performs I/O \(os.File.Read\) without consulting a context`
			return err
		}
	}
	return nil
}

func readLoopChecked(ctx context.Context, f *os.File, buf []byte) error {
	for i := 0; i < 8; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := f.Read(buf); err != nil {
			return err
		}
	}
	return nil
}

func driveLoop(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := doWork(nil, i); err != nil { // want `calls cancellable doWork without consulting a context`
			return err
		}
	}
	return nil
}

func driveLoopCtx(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := doWork(ctx, i); err != nil {
			return err
		}
	}
	return nil
}

// noCtxLoop has no context parameter; rule 3 does not apply — the
// function itself is what a caller cancels around.
func noCtxLoop(f *os.File, buf []byte) error {
	for i := 0; i < 8; i++ {
		if _, err := f.Read(buf); err != nil {
			return err
		}
	}
	return nil
}

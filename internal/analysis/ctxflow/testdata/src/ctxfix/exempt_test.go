package ctxfix

import "context"

// Test files are exempt from rules 1 and 3: tests run under their own
// deadlines.
func testOnlyDetach(ctx context.Context) error {
	return doWork(context.Background(), 1)
}

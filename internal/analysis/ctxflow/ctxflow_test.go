package ctxflow_test

import (
	"testing"

	"pdtl/internal/analysis/atest"
	"pdtl/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	atest.Run(t, ctxflow.Analyzer, "ctxfix")
}

package pdtl

import (
	"context"
	"path/filepath"
	"testing"
)

// TestLiveGraphEndToEnd exercises the public live API: open, mutate,
// count, estimate, compact, count again.
func TestLiveGraphEndToEnd(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "g")
	// A 4-cycle with one chord: exactly 2 triangles.
	edges := [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}
	if _, err := WriteGraph(base, "live-e2e", 4, edges); err != nil {
		t.Fatal(err)
	}
	lg, err := OpenLive(context.Background(), base, LiveOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()

	res, err := lg.Count(context.Background(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 2 {
		t.Fatalf("base count = %d want 2", res.Triangles)
	}
	if est, exact := lg.Estimate(); !exact || est != 2 {
		t.Fatalf("estimate = %v exact=%v want exact 2", est, exact)
	}

	// Close the other diagonal (adds triangles 1-2-3 and 0-1-3), then
	// delete the chord (removes 0-1-2 and 0-2-3).
	if err := lg.Apply([]LiveUpdate{{U: 1, V: 3}, {U: 0, V: 2, Del: true}}); err != nil {
		t.Fatal(err)
	}
	res, err = lg.Count(context.Background(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 2 {
		t.Fatalf("post-mutation count = %d want 2", res.Triangles)
	}
	if est, exact := lg.Estimate(); !exact || est != 2 {
		t.Fatalf("post-mutation estimate = %v exact=%v want exact 2", est, exact)
	}

	if runs := lg.Handle().Runs(); runs != 2 {
		t.Fatalf("handle runs = %d want 2", runs)
	}

	if err := lg.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := lg.Stats()
	if st.Gen != 1 || st.DeltaEdges != 0 {
		t.Fatalf("post-compact stats: %+v", st)
	}
	res, err = lg.Count(context.Background(), Options{Workers: 1, Sched: "stealing"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 2 {
		t.Fatalf("post-compact count = %d want 2", res.Triangles)
	}

	// Invalid batches are rejected atomically.
	if err := lg.Apply([]LiveUpdate{{U: 5, V: 5}}); err == nil {
		t.Fatal("want error for self-loop")
	}
	if err := lg.Apply([]LiveUpdate{{U: 0, V: 1}}); err == nil {
		t.Fatal("want error for duplicate insert")
	}
}

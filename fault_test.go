package pdtl

import (
	"context"
	"path/filepath"
	"testing"
	"time"
)

// TestCountDistributedSurvivesDeadWorker: the public handle API's view of
// the fault-tolerance layer. One of three workers is down before the run;
// g.CountDistributed must still return the exact count, with the failure
// visible in ClusterResult.Failures — and a fail-fast run (MaxRetries < 0)
// must error instead.
func TestCountDistributedSurvivesDeadWorker(t *testing.T) {
	base := filepath.Join(t.TempDir(), "fault")
	if _, err := GeneratePowerLaw(base, 400, 4000, 2.0, 31); err != nil {
		t.Fatal(err)
	}
	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	want, err := g.Count(context.Background(), Options{Workers: 2, MemEdges: 512})
	if err != nil {
		t.Fatal(err)
	}

	// Three workers; kill one before the run so the failure is
	// deterministic at this level (mid-run kills are chaos-tested inside
	// internal/cluster, where the RPC layer can be instrumented).
	live, err := StartLocalWorkers(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	dead, err := ServeWorker("127.0.0.1:0", "doomed", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr()
	dead.Close()
	addrs := []string{live.Addrs()[0], deadAddr, live.Addrs()[1]}

	for _, mode := range []string{"static", "stealing"} {
		res, err := g.CountDistributed(context.Background(), addrs, ClusterOptions{
			Workers: 2, MemEdges: 512, Sched: mode,
			HeartbeatInterval: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("%s: run with dead worker failed: %v", mode, err)
		}
		if res.Triangles != want.Triangles {
			t.Errorf("%s: triangles = %d, want %d", mode, res.Triangles, want.Triangles)
		}
		found := false
		for _, f := range res.Failures {
			if f.Addr == deadAddr {
				found = true
				if f.Err == "" || f.Time.IsZero() {
					t.Errorf("%s: incomplete failure entry: %+v", mode, f)
				}
			}
		}
		if !found {
			t.Errorf("%s: dead worker %s missing from Failures: %+v", mode, deadAddr, res.Failures)
		}
	}

	if _, err := g.CountDistributed(context.Background(), addrs, ClusterOptions{
		Workers: 2, MemEdges: 512, MaxRetries: -1,
	}); err == nil {
		t.Fatal("MaxRetries<0: want error when a worker is unreachable")
	}
}

package pdtl

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"pdtl/internal/mgt"
)

// stealStore writes a skewed test graph store.
func stealStore(t *testing.T) string {
	t.Helper()
	base := filepath.Join(t.TempDir(), "steal")
	if _, err := GeneratePowerLaw(base, 600, 9000, 2.0, 21); err != nil {
		t.Fatal(err)
	}
	return base
}

// TestHandleStealingMatchesStatic drives the public knobs end to end: the
// stealing scheduler must produce the same count and the same normalized
// listing as the default static run, report its mode and per-worker chunk
// draws, and a raw stealing listing must be deterministic across runs.
func TestHandleStealingMatchesStatic(t *testing.T) {
	base := stealStore(t)
	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	staticRes, err := g.Count(context.Background(), Options{Workers: 3, MemEdges: 512})
	if err != nil {
		t.Fatal(err)
	}
	if staticRes.Sched != "static" {
		t.Errorf("default Sched = %q, want static", staticRes.Sched)
	}

	stealOpt := Options{Workers: 3, MemEdges: 512, Sched: "stealing", Chunks: 4}
	stealRes, err := g.Count(context.Background(), stealOpt)
	if err != nil {
		t.Fatal(err)
	}
	if stealRes.Sched != "stealing" {
		t.Errorf("Sched = %q, want stealing", stealRes.Sched)
	}
	if stealRes.Triangles != staticRes.Triangles {
		t.Fatalf("stealing counted %d, static %d", stealRes.Triangles, staticRes.Triangles)
	}
	totalChunks := 0
	for _, w := range stealRes.Workers {
		totalChunks += w.Chunks
	}
	if want := 3 * 4; totalChunks != want {
		t.Errorf("workers drew %d chunks total, want %d", totalChunks, want)
	}

	// Listings: identical multiset, deterministic raw bytes under stealing.
	var staticList, steal1, steal2 bytes.Buffer
	if _, err := g.List(context.Background(), &staticList, Options{Workers: 3, MemEdges: 512}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.List(context.Background(), &steal1, stealOpt); err != nil {
		t.Fatal(err)
	}
	if _, err := g.List(context.Background(), &steal2, stealOpt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(steal1.Bytes(), steal2.Bytes()) {
		t.Error("stealing listing differs across runs; chunk-order determinism broken")
	}
	norm := func(b []byte) map[[3]uint32]bool {
		tris, err := mgt.ReadTriangles(bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		set := make(map[[3]uint32]bool, len(tris))
		for _, tri := range tris {
			if set[tri] {
				t.Fatalf("triangle %v listed twice", tri)
			}
			set[tri] = true
		}
		return set
	}
	a, b := norm(staticList.Bytes()), norm(steal1.Bytes())
	if len(a) != len(b) {
		t.Fatalf("static listed %d triangles, stealing %d", len(a), len(b))
	}
	for tri := range a {
		if !b[tri] {
			t.Fatalf("stealing listing is missing %v", tri)
		}
	}
}

// TestHandleStealingBadKnobs: unknown scheduler names fail fast on every
// entry point rather than being silently treated as static.
func TestHandleStealingBadKnobs(t *testing.T) {
	base := stealStore(t)
	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Count(context.Background(), Options{Sched: "dynamic"}); err == nil {
		t.Error("Count accepted an unknown scheduler name")
	}
	if _, err := g.ForEach(context.Background(), Options{Sched: "dynamic"}, func(u, v, w uint32) {}); err == nil {
		t.Error("ForEach accepted an unknown scheduler name")
	}
	var buf bytes.Buffer
	if _, err := g.List(context.Background(), &buf, Options{Sched: "dynamic"}); err == nil {
		t.Error("List accepted an unknown scheduler name")
	}
}

// TestHandleStealingTriangleDegrees cross-checks the per-vertex counts
// between the schedulers (the stealing path routes through per-chunk
// shards or the atomic fallback).
func TestHandleStealingTriangleDegrees(t *testing.T) {
	base := stealStore(t)
	g, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	staticDeg, _, err := g.TriangleDegrees(context.Background(), Options{Workers: 2, MemEdges: 512})
	if err != nil {
		t.Fatal(err)
	}
	stealDeg, _, err := g.TriangleDegrees(context.Background(), Options{Workers: 2, MemEdges: 512, Sched: "stealing", Chunks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(staticDeg) != len(stealDeg) {
		t.Fatalf("degree arrays differ in length: %d vs %d", len(staticDeg), len(stealDeg))
	}
	for v := range staticDeg {
		if staticDeg[v] != stealDeg[v] {
			t.Fatalf("vertex %d: static degree %d, stealing %d", v, staticDeg[v], stealDeg[v])
		}
	}
}

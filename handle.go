// Handle-based public API: a *Graph is a long-lived, reusable handle on one
// on-disk graph store. Open loads the store's metadata and degree index
// once; the first run orients the graph (if needed) and computes the
// in-degree load-balance plan, and every later run on the same handle
// reuses both — the amortized-preprocessing shape of PDTL §IV, where the
// oriented graph is built once and "can be reused if necessary". All run
// methods take a context.Context and abort cooperatively: every MGT runner
// checks it once per memory window, the shared scan broadcaster unblocks
// waiting runners, and cluster nodes are told to abandon their calculation,
// so cancellation returns ctx.Err() promptly with no leaked goroutines or
// file handles. See DESIGN.md §6 for the lifecycle.

package pdtl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"iter"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pdtl/internal/balance"
	"pdtl/internal/core"
	"pdtl/internal/graph"
	"pdtl/internal/ioacct"
	"pdtl/internal/mgt"
	"pdtl/internal/obs"
	"pdtl/internal/orient"
	"pdtl/internal/sched"
)

// ErrClosed is returned by every method of a closed Graph handle.
var ErrClosed = errors.New("pdtl: graph handle is closed")

// triangleIterBuf is the channel depth between the runners and a Triangles
// consumer; it only smooths bursts, correctness never depends on it.
const triangleIterBuf = 1024

// planKey identifies one cached load-balance plan.
type planKey struct {
	workers  int
	strategy balance.Strategy
}

// ordEntry is one cached orientation: the opened oriented store and its base
// path.
type ordEntry struct {
	d    *graph.Disk
	base string
}

// Graph is an open handle on a graph store. It is safe for concurrent use;
// runs on the same handle share the cached orientation, degree index, and
// load-balance plans. A handle holds no open file descriptors between runs
// (the store's data files are opened per run), so Close only invalidates
// the handle.
type Graph struct {
	base string
	info GraphInfo

	mu     sync.Mutex
	closed bool
	// src is the store as opened; ords caches one orientation per requested
	// store format (empty until the first run orients — the one-time
	// preprocessing every later run reuses). An already-oriented input
	// short-circuits every format to src: the calculation phase is
	// format-agnostic, so the store is used in whatever encoding it is in.
	src          *graph.Disk
	preOriented  bool
	ords         map[graph.Format]ordEntry
	orientedBase string // first orientation's base, for OrientedBase()
	inDeg        []uint32
	plans        map[planKey]balance.Plan
	csr          *graph.CSR
	// orienting / csrLoading entries are non-nil (and closed on completion)
	// while one caller performs the orientation for that format or the
	// whole-graph CSR load. The work happens outside mu, so Close, Info
	// accessors, and concurrent runs stay responsive during the potentially
	// long reads, and waiters can still honor their contexts (orientation)
	// or block only on the load itself (CSR).
	orienting  map[graph.Format]chan struct{}
	csrLoading chan struct{}

	// runs counts the engine calculations started on this handle (local
	// runs and distributed protocols alike, successful or not). It exists
	// for callers that memoize or single-flight runs — the query service's
	// tests assert "two concurrent identical requests cost exactly one
	// engine run" against this counter.
	runs atomic.Uint64
}

// Runs reports how many engine calculations (Count, List, ForEach,
// TriangleDegrees, CountDistributed, ...) have been started on this handle,
// including failed and cancelled ones. Cache layers above the handle use it
// to assert and account for the runs they avoided.
func (g *Graph) Runs() uint64 { return g.runs.Load() }

// Open opens the graph store at base (see WriteGraph and the
// Generate/Import helpers for creating stores) and returns a reusable
// handle. The metadata and degree index are read exactly once, here;
// orientation and load-balance planning happen on the first run and are
// cached for the handle's lifetime.
func Open(base string) (*Graph, error) {
	d, err := graph.Open(base)
	if err != nil {
		return nil, err
	}
	g := &Graph{
		base:      base,
		info:      infoFrom(d),
		src:       d,
		ords:      make(map[graph.Format]ordEntry),
		orienting: make(map[graph.Format]chan struct{}),
		plans:     make(map[planKey]balance.Plan),
	}
	if d.Meta.Oriented {
		g.preOriented = true
		g.orientedBase = base
	}
	return g, nil
}

// Close invalidates the handle; subsequent runs fail with ErrClosed. Runs
// already in flight are not interrupted (cancel their contexts for that).
func (g *Graph) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.closed = true
	return nil
}

// Base reports the store path the handle was opened on.
func (g *Graph) Base() string { return g.base }

// Info reports the store's metadata and degree statistics, computed once at
// Open.
func (g *Graph) Info() GraphInfo { return g.info }

// OrientedBase reports the oriented store the handle's runs use, or "" if
// no run has oriented the graph yet.
func (g *Graph) OrientedBase() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.orientedBase
}

// ensureOriented returns the oriented store in the requested format,
// orienting the graph on first use of that format. An input that was already
// oriented satisfies every requested format as-is (the calculation phase is
// format-agnostic). The returned *orient.Result is non-nil exactly when this
// call performed the orientation — the run that triggered preprocessing is
// the one that reports its cost. Only one orientation per format runs at a
// time; it runs outside the handle mutex, and a concurrent run waiting for
// it returns ctx.Err() if its context fires first (the orientation itself is
// not interrupted — it completes and is cached for the next caller).
func (g *Graph) ensureOriented(ctx context.Context, workers int, format graph.Format) (*graph.Disk, string, *orient.Result, error) {
	if format == "" {
		format = graph.FormatPlain
	}
	for {
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			return nil, "", nil, ErrClosed
		}
		if g.preOriented {
			d := g.src
			g.mu.Unlock()
			return d, g.base, nil, nil
		}
		if e, ok := g.ords[format]; ok {
			g.mu.Unlock()
			return e.d, e.base, nil, nil
		}
		if err := ctx.Err(); err != nil {
			g.mu.Unlock()
			return nil, "", nil, err
		}
		if wait := g.orienting[format]; wait != nil {
			// Another run is orienting this format; wait for it (or our
			// context) and re-check.
			g.mu.Unlock()
			select {
			case <-wait:
			case <-ctx.Done():
				return nil, "", nil, ctx.Err()
			}
			continue
		}
		done := make(chan struct{})
		g.orienting[format] = done
		g.mu.Unlock()

		orientedBase := g.base + ".oriented"
		if format != graph.FormatPlain {
			orientedBase = g.base + ".oriented-" + string(format)
		}
		ores, err := orient.OrientFormat(g.base, orientedBase, workers, format)
		var d *graph.Disk
		if err == nil {
			d, err = graph.Open(orientedBase)
		}
		g.mu.Lock()
		delete(g.orienting, format)
		if err == nil {
			g.ords[format] = ordEntry{d: d, base: orientedBase}
			if g.orientedBase == "" {
				g.orientedBase = orientedBase
			}
			// The orientation already produced the in-degree array the
			// load balancer needs; caching it here means no later run
			// touches the in-degree file at all. (Both formats orient to
			// the identical logical graph, so the array is shared.)
			if g.inDeg == nil {
				g.inDeg = ores.InDegrees
			}
		}
		g.mu.Unlock()
		close(done)
		if err != nil {
			return nil, "", nil, err
		}
		return d, orientedBase, ores, nil
	}
}

// planCached returns the load-balance plan for (workers, strategy),
// computing it at most once per handle. d/orientedBase are the oriented
// store the caller got from ensureOriented: the plan depends only on the
// logical oriented graph — identical across store formats — so one cache
// entry serves every format. The in-degree array is read from the store only
// if orientation did not happen on this handle (an already-oriented store),
// and then only once. No closed check here: a run checks the handle once, at
// ensureOriented — Close only gates runs that have not started, never one
// already in flight.
func (g *Graph) planCached(d *graph.Disk, orientedBase string, workers int, strategy balance.Strategy) (balance.Plan, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	key := planKey{workers: workers, strategy: strategy}
	if p, ok := g.plans[key]; ok {
		return p, nil
	}
	in := balance.Inputs{Offsets: d.Offsets, OutDeg: d.Degrees}
	if strategy == balance.InDegree || strategy == balance.Cost {
		if g.inDeg == nil {
			inDeg, err := orient.LoadInDegrees(orientedBase, d.NumVertices())
			if err != nil {
				return balance.Plan{}, fmt.Errorf("pdtl: load balancing needs the in-degree file: %w", err)
			}
			g.inDeg = inDeg
		}
		in.InDeg = g.inDeg
	}
	if strategy == balance.Cost {
		costs, err := balance.ConeCosts(d)
		if err != nil {
			return balance.Plan{}, fmt.Errorf("pdtl: cost balancing scan: %w", err)
		}
		in.ConeCost = costs
	}
	p, err := balance.SplitInputs(in, workers, strategy)
	if err != nil {
		return balance.Plan{}, err
	}
	g.plans[key] = p
	return p, nil
}

// resolveWorkers reports the runner count a run with these Options uses.
func (o Options) resolveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return defaultWorkers()
}

// sinkCount reports how many sinks a run with these Options routes
// triangles through: one per worker under the static scheduler, one per
// chunk under stealing. Chunk-indexed sinks are what keep stealing output
// deterministic — a chunk's triangles land in the same sink no matter
// which runner happened to execute it, and a sink is only ever driven by
// one runner at a time.
func (o Options) sinkCount() (int, error) {
	mode, err := sched.ParseMode(o.Sched)
	if err != nil {
		return 0, err
	}
	if mode == sched.Stealing {
		return sched.ChunksFor(o.resolveWorkers(), o.Chunks), nil
	}
	return o.resolveWorkers(), nil
}

// run executes one calculation on the handle: ensure orientation (cached),
// look up the plan (cached), and run the scheduler opt selects — one MGT
// runner per range (static) or a pool of Workers runners draining a
// chunked plan (stealing). sinks, when non-nil, must have exactly
// opt.sinkCount() entries: per worker under static, per chunk under
// stealing.
func (g *Graph) run(ctx context.Context, opt Options, sinks []mgt.Sink) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	copt, err := opt.toCore()
	if err != nil {
		return nil, err
	}
	workers := copt.Workers
	if workers <= 0 {
		workers = defaultWorkers()
		copt.Workers = workers
	}
	copt.Sinks = sinks

	g.runs.Add(1)
	start := time.Now()
	// The run's trace spans: one count span rooted at whatever cursor the
	// caller put in ctx (the CLI's -trace, the service's ?trace=1), with
	// orient/plan/calc children; the engine's runners hang their chunk
	// spans under calc.
	cur := obs.CursorFrom(ctx)
	runSpan := cur.Begin(obs.SpanCount)
	defer cur.End(runSpan)
	rcur := cur.Child(runSpan)

	osp := rcur.Begin(obs.SpanOrient)
	d, orientedBase, ores, err := g.ensureOriented(ctx, workers, copt.Store)
	rcur.End(osp)
	if err != nil {
		return nil, err
	}
	calcStart := time.Now()
	psp := rcur.Begin(obs.SpanPlan)
	var plan balance.Plan
	if copt.Sched == sched.Stealing {
		// The chunked plan is a plain k-way split with k = K·P, so the
		// per-(workers,strategy) plan cache applies unchanged.
		plan, err = g.planCached(d, orientedBase, sched.ChunksFor(workers, copt.Chunks), copt.Strategy)
	} else {
		plan, err = g.planCached(d, orientedBase, workers, copt.Strategy)
	}
	rcur.End(psp)
	planTime := time.Since(calcStart)
	if err != nil {
		return nil, err
	}
	csp := rcur.Begin(obs.SpanCalc)
	calcCtx := ctx
	if rcur.T != nil {
		calcCtx = obs.ContextWithCursor(ctx, rcur.Child(csp))
	}
	var stats []core.WorkerStat
	var srcIO ioacct.Stats
	if copt.Sched == sched.Stealing {
		stats, _, srcIO, err = core.RunChunks(calcCtx, d, plan.Ranges, copt)
	} else {
		stats, srcIO, err = core.RunRanges(calcCtx, d, plan.Ranges, copt)
	}
	rcur.End(csp)
	if err != nil {
		return nil, err
	}

	res := &Result{
		PlanTime:        planTime,
		OrientedBase:    orientedBase,
		ScanSource:      string(copt.Scan.Resolve(workers)),
		Sched:           copt.Sched.String(),
		SourceBytesRead: srcIO.BytesRead,
		MaxOutDegree:    d.Meta.MaxOutDegree,
	}
	if ores != nil {
		res.OrientTime = ores.Duration
		res.MaxOutDegree = ores.MaxOutDegree
	}
	cur.SetAttr(runSpan, "workers", int64(len(stats)))
	for _, w := range stats {
		res.Triangles += w.Stats.Triangles
		res.Workers = append(res.Workers, WorkerStats{
			Worker:    w.Worker,
			EdgeLo:    w.Range.Lo,
			EdgeHi:    w.Range.Hi,
			Chunks:    w.Chunks,
			Triangles: w.Stats.Triangles,
			Passes:    w.Stats.Passes,
			CPUTime:   w.Stats.CPUTime(),
			IOTime:    w.Stats.IO.IOTime(),
			BytesRead: w.Stats.IO.BytesRead,
		})
	}
	res.CalcTime = time.Since(calcStart)
	res.TotalTime = time.Since(start)
	return res, nil
}

// Count counts the graph's triangles. The first call orients the graph (if
// the store was unoriented) and plans the load balance; later calls with
// any options reuse both and go straight to the calculation phase.
func (g *Graph) Count(ctx context.Context, opt Options) (*Result, error) {
	return g.run(ctx, opt, nil)
}

// ForEach invokes fn once per triangle (u, v, w), ordered by the
// degree-based order u ≺ v ≺ w. fn is called concurrently from Workers
// goroutines; it must be safe for concurrent use (or set Workers to 1).
func (g *Graph) ForEach(ctx context.Context, opt Options, fn func(u, v, w uint32)) (*Result, error) {
	opt.Workers = opt.resolveWorkers()
	n, err := opt.sinkCount()
	if err != nil {
		return nil, err
	}
	sinks := make([]mgt.Sink, n)
	for i := range sinks {
		sinks[i] = mgt.FuncSink(fn)
	}
	return g.run(ctx, opt, sinks)
}

// List streams every triangle to w as little-endian uint32 triples (12
// bytes per triangle), in the deterministic per-worker order; use
// ReadTriangleFile (or mgt.ReadTriangles) to decode. Workers buffer their
// shares in private temporary files and the shares are concatenated into w
// after the run, so w itself sees one sequential write.
func (g *Graph) List(ctx context.Context, w io.Writer, opt Options) (*Result, error) {
	return g.listTo(ctx, w, "", opt)
}

// listTo is List with an explicit directory for the part files ("" means
// the default temp dir) — one per worker under the static scheduler, one
// per chunk under stealing, concatenated in part order either way (chunk
// order makes a stealing listing deterministic despite dynamic
// assignment). os.CreateTemp names the parts, so concurrent listings —
// even of the same graph to the same output path — never collide on their
// intermediates.
func (g *Graph) listTo(ctx context.Context, out io.Writer, partDir string, opt Options) (*Result, error) {
	opt.Workers = opt.resolveWorkers()
	n, err := opt.sinkCount()
	if err != nil {
		return nil, err
	}
	parts := make([]*os.File, 0, n)
	defer func() {
		for _, f := range parts {
			f.Close()
			os.Remove(f.Name())
		}
	}()
	sinks := make([]mgt.Sink, n)
	fileSinks := make([]*mgt.FileSink, n)
	for i := range sinks {
		f, err := os.CreateTemp(partDir, "pdtl-list-*.part")
		if err != nil {
			return nil, err
		}
		parts = append(parts, f)
		fileSinks[i] = mgt.NewFileSink(f)
		sinks[i] = fileSinks[i]
	}
	res, err := g.run(ctx, opt, sinks)
	if err != nil {
		return nil, err
	}
	// Reassembly: part files concatenate in part order (worker order under
	// static, chunk order under stealing) — traced as one assemble span.
	cur := obs.CursorFrom(ctx)
	asp := cur.Begin(obs.SpanAssemble)
	defer cur.End(asp)
	cur.SetAttr(asp, "parts", int64(len(fileSinks)))
	for i, sink := range fileSinks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := sink.Flush(); err != nil {
			return nil, err
		}
		if _, err := parts[i].Seek(0, 0); err != nil {
			return nil, err
		}
		if _, err := io.Copy(out, parts[i]); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ListFile writes the listing to outPath atomically: the per-worker parts
// and the output temp file live in outPath's directory, and the temp is
// renamed into place only on success — a failed or cancelled run never
// truncates or disturbs an existing file at outPath. The final file gets
// os.Create's permissions (0666 clipped by the umask).
func (g *Graph) ListFile(ctx context.Context, outPath string, opt Options) (*Result, error) {
	dir := filepath.Dir(outPath)
	out, err := createExclusive(dir, ".pdtl-out-", 0o666)
	if err != nil {
		return nil, err
	}
	res, err := g.listTo(ctx, out, dir, opt)
	if err != nil {
		out.Close()
		os.Remove(out.Name())
		return nil, err
	}
	if err := out.Close(); err != nil {
		os.Remove(out.Name())
		return nil, err
	}
	if err := os.Rename(out.Name(), outPath); err != nil {
		os.Remove(out.Name())
		return nil, err
	}
	return res, nil
}

// createExclusive is os.CreateTemp with a caller-chosen mode: CreateTemp
// hardwires 0600, which would leave a listing owner-only, while O_EXCL
// creation at 0666 gets the umask applied by the kernel — exactly
// os.Create's semantics, minus the truncation of an existing file.
func createExclusive(dir, prefix string, mode os.FileMode) (*os.File, error) {
	for try := 0; try < 10000; try++ {
		name := filepath.Join(dir, prefix+strconv.FormatUint(rand.Uint64(), 36))
		f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, mode)
		if err == nil {
			return f, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("pdtl: could not create a unique temp file in %s", dir)
}

// Triangles returns a single-use iterator over every triangle (u, v, w)
// with u ≺ v ≺ w, plus an error function to check after iteration (like
// bufio.Scanner.Err). Breaking out of the loop early cancels the underlying
// run: the runners abort within one memory window and every goroutine and
// file handle is torn down before the loop statement completes. A break is
// not an error; a cancelled ctx or a failed run is, and surfaces through
// the returned error function.
func (g *Graph) Triangles(ctx context.Context, opt Options) (iter.Seq[[3]uint32], func() error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var runErr error
	seq := func(yield func([3]uint32) bool) {
		runErr = nil
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		ch := make(chan [3]uint32, triangleIterBuf)
		done := make(chan error, 1)
		go func() {
			_, err := g.ForEach(runCtx, opt, func(u, v, w uint32) {
				select {
				case ch <- [3]uint32{u, v, w}:
				case <-runCtx.Done():
				}
			})
			close(ch)
			done <- err
		}()
		broke := false
		for t := range ch {
			if !yield(t) {
				broke = true
				cancel()
				break
			}
		}
		if broke {
			// Drain so no runner stays blocked on a send between the
			// cancellation and its next per-window context check.
			for range ch {
			}
		}
		err := <-done
		if broke && errors.Is(err, context.Canceled) && ctx.Err() == nil {
			// The teardown we triggered, not a failure.
			err = nil
		}
		runErr = err
	}
	return seq, func() error { return runErr }
}

// maxShardEntries caps the total uint64 counters TriangleDegrees allocates
// across its per-worker shards (1<<27 entries = 1 GiB). Past the cap the
// workers share one array with atomic adds instead — still lock-free,
// bounded at n counters regardless of worker count.
const maxShardEntries = 1 << 27

// TriangleDegrees returns, for every vertex, the number of triangles it
// participates in — the per-vertex quantity behind local clustering
// coefficients. Each sink (one per worker, or per chunk under the stealing
// scheduler) accumulates into a private count shard merged once after the
// run, so the hot path takes no lock; when sinks × n counters would exceed
// maxShardEntries, the sinks share a single array with atomic adds
// instead, trading some cache-line contention for bounded memory on huge
// graphs (or high chunk counts).
func (g *Graph) TriangleDegrees(ctx context.Context, opt Options) ([]uint64, *Result, error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, nil, ErrClosed
	}
	n := g.src.NumVertices()
	g.mu.Unlock()

	opt.Workers = opt.resolveWorkers()
	numSinks, err := opt.sinkCount()
	if err != nil {
		return nil, nil, err
	}
	sinks := make([]mgt.Sink, numSinks)
	if uint64(n)*uint64(numSinks) > maxShardEntries {
		counts := make([]uint64, n)
		for i := range sinks {
			sinks[i] = mgt.FuncSink(func(u, v, w uint32) {
				atomic.AddUint64(&counts[u], 1)
				atomic.AddUint64(&counts[v], 1)
				atomic.AddUint64(&counts[w], 1)
			})
		}
		res, err := g.run(ctx, opt, sinks)
		if err != nil {
			return nil, nil, err
		}
		return counts, res, nil
	}
	shards := make([][]uint64, numSinks)
	for i := range sinks {
		shard := make([]uint64, n)
		shards[i] = shard
		sinks[i] = mgt.FuncSink(func(u, v, w uint32) {
			shard[u]++
			shard[v]++
			shard[w]++
		})
	}
	res, err := g.run(ctx, opt, sinks)
	if err != nil {
		return nil, nil, err
	}
	counts := shards[0]
	for _, shard := range shards[1:] {
		for v, c := range shard {
			counts[v] += c
		}
	}
	return counts, res, nil
}

// VerifySmallDegree checks the paper's small-degree assumption
// (d*max ≤ M/2) against the handle's oriented store, orienting first if no
// run has yet. The returned error is advisory — counting stays exact
// without the assumption, only the CPU bound of Theorem IV.2 weakens.
func (g *Graph) VerifySmallDegree(memEdges int) error {
	d, _, _, err := g.ensureOriented(context.Background(), defaultWorkers(), graph.FormatPlain)
	if err != nil {
		return err
	}
	return mgt.CheckSmallDegree(d, memEdges)
}

// csrCached lazily loads (and caches) the opened store as an in-memory CSR
// for the approximate estimators. Like the orientation, the load runs
// outside the handle mutex (one loader at a time, concurrent callers wait
// on its completion channel), so a multi-second whole-graph read never
// blocks Close or a concurrent run's cache lookups.
func (g *Graph) csrCached() (*graph.CSR, error) {
	for {
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			return nil, ErrClosed
		}
		if g.csr != nil {
			csr := g.csr
			g.mu.Unlock()
			return csr, nil
		}
		if g.csrLoading != nil {
			wait := g.csrLoading
			g.mu.Unlock()
			<-wait
			continue
		}
		done := make(chan struct{})
		g.csrLoading = done
		src := g.src
		g.mu.Unlock()

		csr, err := src.LoadCSR()
		g.mu.Lock()
		g.csrLoading = nil
		if err == nil {
			g.csr = csr
		}
		g.mu.Unlock()
		close(done)
		return csr, err
	}
}

// infoFrom computes a store's GraphInfo from its opened metadata and degree
// index.
func infoFrom(d *graph.Disk) GraphInfo {
	info := GraphInfo{
		Name:         d.Meta.Name,
		NumVertices:  d.NumVertices(),
		NumEdges:     d.Meta.NumEdges,
		MaxDegree:    d.Meta.MaxDegree,
		Oriented:     d.Meta.Oriented,
		MaxOutDegree: d.Meta.MaxOutDegree,
	}
	if n := float64(info.NumVertices); n > 0 {
		var sum, sumSq float64
		for _, deg := range d.Degrees {
			df := float64(deg)
			sum += df
			sumSq += df * df
		}
		info.AvgDegree = sum / n
		variance := sumSq/n - info.AvgDegree*info.AvgDegree
		if variance > 0 {
			info.StdDegree = sqrt(variance)
		}
	}
	return info
}
